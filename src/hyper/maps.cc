#include "hyper/maps.h"

#include <cmath>

#include "hyper/poincare.h"
#include "util/logging.h"

namespace logirec::hyper {

Vec LorentzToPoincare(ConstSpan x) {
  LOGIREC_CHECK(x.size() >= 2);
  const size_t d = x.size() - 1;
  const double denom = x[0] + 1.0;
  Vec out(d);
  for (size_t i = 0; i < d; ++i) out[i] = x[i + 1] / denom;
  ProjectToBall(Span(out));
  return out;
}

void LorentzToPoincareVjp(ConstSpan x, ConstSpan grad_out, Span grad_x) {
  const size_t d = x.size() - 1;
  LOGIREC_CHECK(grad_out.size() == d);
  LOGIREC_CHECK(grad_x.size() == x.size());
  const double denom = x[0] + 1.0;
  double g_dot_xs = 0.0;
  for (size_t i = 0; i < d; ++i) g_dot_xs += grad_out[i] * x[i + 1];
  // out_i = x_{i+1} / (x_0 + 1):
  //   d out_i / d x_0    = -x_{i+1} / (x_0+1)^2
  //   d out_i / d x_{j+1} = delta_ij / (x_0+1)
  grad_x[0] += -g_dot_xs / (denom * denom);
  for (size_t i = 0; i < d; ++i) grad_x[i + 1] += grad_out[i] / denom;
}

Vec PoincareToLorentz(ConstSpan x) {
  const size_t d = x.size();
  const double s = math::SquaredNorm(x);
  const double denom = std::max(1.0 - s, kBallEps);
  Vec out(d + 1);
  out[0] = (1.0 + s) / denom;
  for (size_t i = 0; i < d; ++i) out[i + 1] = 2.0 * x[i] / denom;
  return out;
}

void PoincareToLorentzVjp(ConstSpan x, ConstSpan grad_out, Span grad_x) {
  const size_t d = x.size();
  LOGIREC_CHECK(grad_out.size() == d + 1);
  LOGIREC_CHECK(grad_x.size() == d);
  const double s = math::SquaredNorm(x);
  const double denom = std::max(1.0 - s, kBallEps);
  const double denom2 = denom * denom;
  double g_dot_xs = 0.0;
  for (size_t i = 0; i < d; ++i) g_dot_xs += grad_out[i + 1] * x[i];
  // out_0 = (1+s)/(1-s):   d out_0 / d x_j = 4 x_j / (1-s)^2
  // out_i = 2 x_{i-1}/(1-s): d out_i / d x_j
  //        = 2 delta_ij/(1-s) + 4 x_{i-1} x_j/(1-s)^2
  for (size_t j = 0; j < d; ++j) {
    grad_x[j] += grad_out[0] * 4.0 * x[j] / denom2 +
                 2.0 * grad_out[j + 1] / denom +
                 4.0 * x[j] * g_dot_xs / denom2;
  }
}

}  // namespace logirec::hyper
