#ifndef LOGIREC_HYPER_MAPS_H_
#define LOGIREC_HYPER_MAPS_H_

#include "math/vec.h"

namespace logirec::hyper {

using math::ConstSpan;
using math::Span;
using math::Vec;

/// Diffeomorphism p: Lorentz -> Poincaré (paper Eq. 1):
///   p(x_0, x_1, ..., x_d) = (x_1, ..., x_d) / (x_0 + 1).
/// Input has d+1 components; output has d.
Vec LorentzToPoincare(ConstSpan x);

/// Vector-Jacobian product of LorentzToPoincare: accumulates into `grad_x`
/// ((d+1)-dim) the gradient given `grad_out` (d-dim).
void LorentzToPoincareVjp(ConstSpan x, ConstSpan grad_out, Span grad_x);

/// Diffeomorphism p^{-1}: Poincaré -> Lorentz (paper Eq. 2):
///   p^{-1}(x) = (1 + ||x||^2, 2 x_1, ..., 2 x_d) / (1 - ||x||^2).
/// Input has d components; output has d+1.
Vec PoincareToLorentz(ConstSpan x);

/// Vector-Jacobian product of PoincareToLorentz: accumulates into `grad_x`
/// (d-dim) the gradient given `grad_out` ((d+1)-dim).
void PoincareToLorentzVjp(ConstSpan x, ConstSpan grad_out, Span grad_x);

}  // namespace logirec::hyper

#endif  // LOGIREC_HYPER_MAPS_H_
