#include "hyper/hyperplane.h"

#include <cmath>

#include "hyper/poincare.h"
#include "util/logging.h"

namespace logirec::hyper {

void ClampHyperplaneCenter(Span c) {
  const double n = math::Norm(c);
  if (n < kMinNorm) {
    // Degenerate center: nudge along the first axis.
    c[0] = kMinCenterNorm;
    for (size_t i = 1; i < c.size(); ++i) c[i] = 0.0;
    return;
  }
  if (n < kMinCenterNorm) {
    math::ScaleInPlace(c, kMinCenterNorm / n);
  } else if (n > kMaxCenterNorm) {
    math::ScaleInPlace(c, kMaxCenterNorm / n);
  }
}

Ball BallFromCenter(ConstSpan c) {
  const double n = std::max(math::Norm(c), kMinNorm);
  Ball ball;
  // o_c = ((1 + n^2) / (2n)) * (c / n): the center direction is
  // normalized so that the ball meets the unit sphere perpendicularly
  // (||o_c||^2 = 1 + r_c^2) and c itself lies on the ball's boundary.
  const double a = (1.0 + n * n) / (2.0 * n * n);
  ball.center = math::Scale(c, a);
  ball.radius = (1.0 - n * n) / (2.0 * n);
  return ball;
}

void BallFromCenterVjp(ConstSpan c, ConstSpan grad_center,
                       double grad_radius, Span grad_c) {
  LOGIREC_CHECK(grad_c.size() == c.size());
  const double n = std::max(math::Norm(c), kMinNorm);
  const double a = (1.0 + n * n) / (2.0 * n * n);
  // a(n) = (1 + n^2) / (2 n^2)  =>  da/dn = -1 / n^3.
  // r(n) = (1 - n^2) / (2 n)    =>  dr/dn = -(n^2 + 1) / (2 n^2).
  const double da_dn = -1.0 / (n * n * n);
  const double dr_dn = -(n * n + 1.0) / (2.0 * n * n);

  double g_dot_c = 0.0;
  if (!grad_center.empty()) {
    LOGIREC_CHECK(grad_center.size() == c.size());
    g_dot_c = math::Dot(grad_center, c);
  }
  for (size_t j = 0; j < c.size(); ++j) {
    double g = 0.0;
    if (!grad_center.empty()) {
      // o_i = a(n) c_i: do_i/dc_j = a delta_ij + da/dn * c_i c_j / n.
      g += a * grad_center[j] + (da_dn / n) * c[j] * g_dot_c;
    }
    // r = r(n): dr/dc_j = dr/dn * c_j / n.
    g += grad_radius * dr_dn * c[j] / n;
    grad_c[j] += g;
  }
}

double HyperplaneDistanceToOrigin(ConstSpan c) {
  return PoincareNormToOrigin(c);
}

}  // namespace logirec::hyper
