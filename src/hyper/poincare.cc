#include "hyper/poincare.h"

#include <cmath>

#include "util/logging.h"

namespace logirec::hyper {

using math::Axpy;
using math::Dot;
using math::Norm;
using math::SafeAcosh;
using math::SafeAcoshGrad;
using math::SquaredDistance;
using math::SquaredNorm;

void ProjectToBall(Span x) {
  const double n = Norm(x);
  const double max_norm = 1.0 - kBallEps;
  if (n > max_norm) {
    math::ScaleInPlace(x, max_norm / n);
  }
}

double PoincareDistance(ConstSpan x, ConstSpan y) {
  const double alpha = std::max(1.0 - SquaredNorm(x), kBallEps);
  const double beta = std::max(1.0 - SquaredNorm(y), kBallEps);
  const double gamma = 1.0 + 2.0 * SquaredDistance(x, y) / (alpha * beta);
  return SafeAcosh(gamma);
}

void PoincareDistanceGrad(ConstSpan x, ConstSpan y, double scale,
                          Span grad_x, Span grad_y) {
  const size_t d = x.size();
  LOGIREC_CHECK(y.size() == d);
  const double alpha = std::max(1.0 - SquaredNorm(x), kBallEps);
  const double beta = std::max(1.0 - SquaredNorm(y), kBallEps);
  const double u = SquaredDistance(x, y);
  const double gamma = 1.0 + 2.0 * u / (alpha * beta);
  // dd/dgamma, clamped at the acosh boundary.
  const double dacosh = SafeAcoshGrad(gamma);
  const double s = scale * dacosh;

  if (!grad_x.empty()) {
    LOGIREC_CHECK(grad_x.size() == d);
    // dgamma/dx = (4 / (alpha*beta)) * [ (x - y) + (u / alpha) * x ].
    const double c = 4.0 / (alpha * beta);
    for (size_t i = 0; i < d; ++i) {
      grad_x[i] += s * c * ((x[i] - y[i]) + (u / alpha) * x[i]);
    }
  }
  if (!grad_y.empty()) {
    LOGIREC_CHECK(grad_y.size() == d);
    const double c = 4.0 / (alpha * beta);
    for (size_t i = 0; i < d; ++i) {
      grad_y[i] += s * c * ((y[i] - x[i]) + (u / beta) * y[i]);
    }
  }
}

Vec MobiusAdd(ConstSpan x, ConstSpan y) {
  LOGIREC_CHECK(x.size() == y.size());
  const double xy = Dot(x, y);
  const double x2 = SquaredNorm(x);
  const double y2 = SquaredNorm(y);
  const double denom = 1.0 + 2.0 * xy + x2 * y2;
  const double cx = (1.0 + 2.0 * xy + y2) / denom;
  const double cy = (1.0 - x2) / denom;
  Vec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = cx * x[i] + cy * y[i];
  return out;
}

double ConformalFactor(ConstSpan x) {
  return 2.0 / std::max(1.0 - SquaredNorm(x), kBallEps);
}

Vec PoincareExpMap(ConstSpan x, ConstSpan v) {
  const double vn = Norm(v);
  if (vn < kMinNorm) return Vec(x.begin(), x.end());
  const double lam = ConformalFactor(x);
  const double t = std::tanh(lam * vn / 2.0);
  Vec step = math::Scale(v, t / vn);
  Vec out = MobiusAdd(x, step);
  ProjectToBall(out);
  return out;
}

Vec PoincareExpMapEq17(ConstSpan x, ConstSpan v) {
  const double vn = Norm(v);
  if (vn < kMinNorm) return Vec(x.begin(), x.end());
  const double t = std::tanh(vn / 2.0);
  Vec step = math::Scale(v, t / vn);
  Vec out = MobiusAdd(x, step);
  ProjectToBall(out);
  return out;
}

Vec PoincareLogMap(ConstSpan x, ConstSpan y) {
  Vec neg_x = math::Scale(x, -1.0);
  Vec w = MobiusAdd(neg_x, y);
  const double wn = Norm(w);
  if (wn < kMinNorm) return Vec(x.size(), 0.0);
  const double lam = ConformalFactor(x);
  const double f = (2.0 / lam) * std::atanh(std::min(wn, 1.0 - kBallEps));
  return math::Scale(w, f / wn);
}

void RsgdStepPoincare(Span x, ConstSpan euclidean_grad, double lr) {
  LOGIREC_CHECK(x.size() == euclidean_grad.size());
  const double a = std::max(1.0 - SquaredNorm(x), kBallEps);
  const double riem = a * a / 4.0;
  Vec step(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    step[i] = -lr * riem * euclidean_grad[i];
  }
  Vec out = PoincareExpMap(x, step);
  math::Copy(out, x);
}

void RsgdStepPoincareEq17(Span x, ConstSpan euclidean_grad, double lr) {
  LOGIREC_CHECK(x.size() == euclidean_grad.size());
  const double a = std::max(1.0 - SquaredNorm(x), kBallEps);
  const double riem = a * a / 4.0;
  Vec step(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    step[i] = -lr * riem * euclidean_grad[i];
  }
  Vec out = PoincareExpMapEq17(x, step);
  math::Copy(out, x);
}

double PoincareNormToOrigin(ConstSpan x) {
  const double n = std::min(Norm(x), 1.0 - kBallEps);
  return 2.0 * std::atanh(n);
}

}  // namespace logirec::hyper
