#ifndef LOGIREC_HYPER_LORENTZ_H_
#define LOGIREC_HYPER_LORENTZ_H_

#include "math/vec.h"

namespace logirec::hyper {

using math::ConstSpan;
using math::Span;
using math::Vec;

/// The Lorentz (hyperboloid) model: points x in R^{d+1} with
/// <x,x>_L = -1, x_0 > 0, where <x,y>_L = -x_0 y_0 + sum_i x_i y_i.
///
/// Convention: all Lorentz vectors in this library are ambient
/// (d+1)-dimensional; tangent vectors at the origin o = (1, 0, ..., 0)
/// carry a zero time component.

/// Lorentzian inner product <x,y>_L.
double LorentzDot(ConstSpan x, ConstSpan y);

/// The origin o = (1, 0, ..., 0) in R^{d+1}.
Vec LorentzOrigin(int ambient_dim);

/// Re-normalizes `x` in place onto the hyperboloid by recomputing
///   x_0 = sqrt(1 + ||x_{1:}||^2).
void ProjectToHyperboloid(Span x);

/// Geodesic distance d(x,y) = acosh(-<x,y>_L).
double LorentzDistance(ConstSpan x, ConstSpan y);

/// Ambient Euclidean gradients of LorentzDistance, accumulated into
/// `grad_x` / `grad_y` scaled by `scale`. Either output may be empty.
void LorentzDistanceGrad(ConstSpan x, ConstSpan y, double scale,
                         Span grad_x, Span grad_y);

/// Exponential map at the origin (Eq. 8). `z` is an ambient tangent vector
/// with z_0 = 0 (the time component is ignored). Returns a point on the
/// hyperboloid.
Vec LorentzExpOrigin(ConstSpan z);

/// Vector-Jacobian product of LorentzExpOrigin: accumulates into `grad_z`
/// the ambient gradient with respect to `z` given the output gradient
/// `grad_out`, both (d+1)-dimensional. The time component of `grad_z` is
/// left untouched (tangent vectors at o have no time freedom).
void LorentzExpOriginVjp(ConstSpan z, ConstSpan grad_out, Span grad_z);

/// Logarithmic map at the origin (Eq. 6). Input is a hyperboloid point;
/// output is an ambient tangent vector with zero time component.
Vec LorentzLogOrigin(ConstSpan x);

/// Vector-Jacobian product of LorentzLogOrigin: accumulates into `grad_x`
/// the ambient gradient with respect to `x` given the output gradient
/// `grad_out` (whose time component is ignored).
void LorentzLogOriginVjp(ConstSpan x, ConstSpan grad_out, Span grad_x);

/// Exponential map at an arbitrary point `x` (Eq. 18). `v` must be tangent
/// at x, i.e. <x,v>_L = 0.
Vec LorentzExpMap(ConstSpan x, ConstSpan v);

/// Converts an ambient Euclidean gradient into the Riemannian gradient on
/// the hyperboloid at `x`:
///   h = J * grad  (J = diag(-1, 1, ..., 1)), then
///   riem = h + <x,h>_L * x   (projection onto the tangent space at x).
Vec LorentzRiemannianGrad(ConstSpan x, ConstSpan euclidean_grad);

/// One Riemannian SGD step on the hyperboloid (Nickel & Kiela 2018):
/// walks along exp_x(-lr * riemannian_grad) and re-projects. In-place.
void RsgdStepLorentz(Span x, ConstSpan euclidean_grad, double lr);

}  // namespace logirec::hyper

#endif  // LOGIREC_HYPER_LORENTZ_H_
