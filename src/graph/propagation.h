#ifndef LOGIREC_GRAPH_PROPAGATION_H_
#define LOGIREC_GRAPH_PROPAGATION_H_

#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "math/matrix.h"

namespace logirec::graph {

using math::Matrix;

/// Normalization variants for the bipartite aggregation step.
enum class Norm {
  /// 1/|N_u| on the receiving side — the paper's Eq. 7 (and transpose).
  kReceiver,
  /// 1/sqrt(|N_u| |N_v|) — LightGCN's symmetric normalization.
  kSymmetric,
};

/// The linear multi-layer propagation of Eq. 7:
///   z_u^{l+1} = z_u^l + sum_{v in N_u} w_uv z_v^l
///   z_v^{l+1} = z_v^l + sum_{u in N_v} w_vu z_u^l
///   output    = sum_{l=1..L} z^l
/// The whole map (ZU0, ZV0) -> (SU, SV) is linear, so backpropagation is
/// the same recursion run with transposed edge weights (Backward below);
/// LogiRec exploits this to avoid taping the graph convolution.
///
/// Implementation: the bipartite adjacency is flattened into two CSR views
/// (user->items and item->users) at construction, with all four per-edge
/// normalization weights (forward and adjoint, each direction) precomputed
/// once. Forward/Backward then run pure index/weight-array kernels with
/// persistent scratch matrices — no divides, sqrts, or allocations on the
/// hot path. Edge order inside each CSR row matches the adjacency-list
/// order of the seed implementation and every output element accumulates
/// its contributions in that same order, so results are bit-identical to
/// the per-edge reference (asserted by propagation tests).
class GcnPropagator {
 public:
  /// `num_threads` bounds the worker count for the row-parallel kernels
  /// (0 = hardware concurrency). Each output row is owned by exactly one
  /// worker, so results do not depend on the thread count.
  GcnPropagator(const BipartiteGraph* graph, int layers,
                Norm norm = Norm::kReceiver, int num_threads = 0);

  /// Forward pass. `zu0`/`zv0` are (num_users x dim) and (num_items x dim);
  /// outputs are written to `su`/`sv` (resized as needed, reusing their
  /// existing capacity).
  /// `include_layer0` adds z^0 into the output sum (LightGCN convention);
  /// the paper's Eq. 7 sums l = 1..L only.
  void Forward(const Matrix& zu0, const Matrix& zv0, Matrix* su, Matrix* sv,
               bool include_layer0 = false) const;

  /// Vector-Jacobian product: given gradients w.r.t. (SU, SV), accumulates
  /// gradients w.r.t. (ZU0, ZV0) into `gzu0`/`gzv0` (must be pre-sized and
  /// zeroed by the caller if accumulation from zero is desired).
  void Backward(const Matrix& gsu, const Matrix& gsv, Matrix* gzu0,
                Matrix* gzv0, bool include_layer0 = false) const;

  int layers() const { return layers_; }
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }

  /// Incremental maintenance for the streaming-ingest pipeline: brings
  /// the CSR views and normalization weights in sync with `graph` after
  /// `new_edges` were appended to it (via BipartiteGraph::AddEdge, in the
  /// given order, since the last construction/sync). Grown rows are
  /// rewritten from the graph's adjacency lists — matching the row order
  /// a from-scratch build would produce, so the updated propagator is
  /// element-wise identical to `GcnPropagator(graph, ...)` — and
  /// weights are recomputed only for rows/entries whose endpoint degrees
  /// changed (the touched users/items and the reverse edges incident to
  /// them), with the constructor's exact expressions so values stay
  /// bit-identical. Cost: one memmove splice plus O(touched adjacency),
  /// not a full rebuild.
  void ApplyEdgeUpdates(const BipartiteGraph& graph,
                        const std::vector<std::pair<int, int>>& new_edges);

  // Introspection for the incremental-equals-rebuild property tests.
  const std::vector<int>& u_offsets() const { return u_offsets_; }
  const std::vector<int>& u_cols() const { return u_cols_; }
  const std::vector<int>& v_offsets() const { return v_offsets_; }
  const std::vector<int>& v_cols() const { return v_cols_; }
  const std::vector<double>& u_fwd_w() const { return u_fwd_w_; }
  const std::vector<double>& u_adj_w() const { return u_adj_w_; }
  const std::vector<double>& v_fwd_w() const { return v_fwd_w_; }
  const std::vector<double>& v_adj_w() const { return v_adj_w_; }

 private:
  /// dst rows accumulate weighted source rows along one CSR view:
  /// out[r] += sum_e weights[e] * src[cols[e]] over that row's edge range.
  void Aggregate(const Matrix& src, Matrix* out,
                 const std::vector<int>& offsets, const std::vector<int>& cols,
                 const std::vector<double>& weights) const;

  int num_users_ = 0;
  int num_items_ = 0;
  int layers_ = 0;
  Norm norm_ = Norm::kReceiver;
  int num_threads_ = 0;

  // CSR views of the bipartite graph. `u_*` aggregates items into users
  // (row u spans u_offsets_[u]..u_offsets_[u+1], listing item columns);
  // `v_*` aggregates users into items. `*_fwd_w_` hold the forward
  // normalization per edge, `*_adj_w_` the adjoint (transposed) one; for
  // the symmetric norm the two coincide.
  std::vector<int> u_offsets_, u_cols_;
  std::vector<int> v_offsets_, v_cols_;
  std::vector<double> u_fwd_w_, u_adj_w_;
  std::vector<double> v_fwd_w_, v_adj_w_;

  // Persistent layer scratch (current layer z^l and next layer z^{l+1},
  // both sides). Mutable so Forward/Backward stay const for callers; the
  // propagator is therefore not reentrant across threads — parallelism
  // lives *inside* the kernels, one output row per worker.
  mutable Matrix cu_, cv_, nu_, nv_;
};

}  // namespace logirec::graph

#endif  // LOGIREC_GRAPH_PROPAGATION_H_
