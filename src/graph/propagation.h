#ifndef LOGIREC_GRAPH_PROPAGATION_H_
#define LOGIREC_GRAPH_PROPAGATION_H_

#include "graph/bipartite_graph.h"
#include "math/matrix.h"

namespace logirec::graph {

using math::Matrix;

/// Normalization variants for the bipartite aggregation step.
enum class Norm {
  /// 1/|N_u| on the receiving side — the paper's Eq. 7 (and transpose).
  kReceiver,
  /// 1/sqrt(|N_u| |N_v|) — LightGCN's symmetric normalization.
  kSymmetric,
};

/// The linear multi-layer propagation of Eq. 7:
///   z_u^{l+1} = z_u^l + sum_{v in N_u} w_uv z_v^l
///   z_v^{l+1} = z_v^l + sum_{u in N_v} w_vu z_u^l
///   output    = sum_{l=1..L} z^l
/// The whole map (ZU0, ZV0) -> (SU, SV) is linear, so backpropagation is
/// the same recursion run with transposed edge weights (Backward below);
/// LogiRec exploits this to avoid taping the graph convolution.
class GcnPropagator {
 public:
  GcnPropagator(const BipartiteGraph* graph, int layers,
                Norm norm = Norm::kReceiver);

  /// Forward pass. `zu0`/`zv0` are (num_users x dim) and (num_items x dim);
  /// outputs are written to `su`/`sv` (resized as needed).
  /// `include_layer0` adds z^0 into the output sum (LightGCN convention);
  /// the paper's Eq. 7 sums l = 1..L only.
  void Forward(const Matrix& zu0, const Matrix& zv0, Matrix* su, Matrix* sv,
               bool include_layer0 = false) const;

  /// Vector-Jacobian product: given gradients w.r.t. (SU, SV), accumulates
  /// gradients w.r.t. (ZU0, ZV0) into `gzu0`/`gzv0` (must be pre-sized and
  /// zeroed by the caller if accumulation from zero is desired).
  void Backward(const Matrix& gsu, const Matrix& gsv, Matrix* gzu0,
                Matrix* gzv0, bool include_layer0 = false) const;

  int layers() const { return layers_; }

 private:
  /// out_users[u] += sum_{v in N_u} w(u,v) * items[v]; `transpose` swaps
  /// the normalization to the emitting side (for the adjoint pass).
  void AggregateToUsers(const Matrix& items, Matrix* out_users,
                        bool transpose) const;
  void AggregateToItems(const Matrix& users, Matrix* out_items,
                        bool transpose) const;
  double EdgeWeight(int user, int item, bool transpose) const;

  const BipartiteGraph* graph_;
  int layers_;
  Norm norm_;
};

}  // namespace logirec::graph

#endif  // LOGIREC_GRAPH_PROPAGATION_H_
