#include "graph/bipartite_graph.h"

#include "util/logging.h"

namespace logirec::graph {

BipartiteGraph::BipartiteGraph(
    int num_users, int num_items,
    const std::vector<std::vector<int>>& user_items)
    : user_items_(user_items), item_users_(num_items) {
  LOGIREC_CHECK(static_cast<int>(user_items.size()) == num_users);
  for (int u = 0; u < num_users; ++u) {
    for (int v : user_items_[u]) {
      LOGIREC_CHECK(v >= 0 && v < num_items);
      item_users_[v].push_back(u);
      ++num_edges_;
    }
  }
}

}  // namespace logirec::graph
