#include "graph/bipartite_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace logirec::graph {

BipartiteGraph::BipartiteGraph(
    int num_users, int num_items,
    const std::vector<std::vector<int>>& user_items)
    : user_items_(user_items), item_users_(num_items) {
  LOGIREC_CHECK(static_cast<int>(user_items.size()) == num_users);
  for (int u = 0; u < num_users; ++u) {
    for (int v : user_items_[u]) {
      LOGIREC_CHECK(v >= 0 && v < num_items);
      item_users_[v].push_back(u);
      ++num_edges_;
    }
  }
}

void BipartiteGraph::AddEdge(int user, int item) {
  LOGIREC_CHECK(user >= 0 && user < num_users());
  LOGIREC_CHECK(item >= 0 && item < num_items());
  user_items_[user].push_back(item);
  // The item row must stay user-ascending: the bulk constructor visits
  // users in increasing order and each (user, item) pair is unique, so a
  // from-scratch rebuild over the extended per-user rows yields sorted
  // item rows. Inserting in position (rather than tail-appending) keeps
  // the incremental graph element-wise identical to that rebuild.
  std::vector<int>& row = item_users_[item];
  row.insert(std::lower_bound(row.begin(), row.end(), user), user);
  ++num_edges_;
}

}  // namespace logirec::graph
