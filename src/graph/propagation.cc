#include "graph/propagation.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/logging.h"
#include "util/parallel.h"

namespace logirec::graph {
namespace {

// Runtime-dispatched AVX2 clones for the CSR inner loops, mirroring
// math/kernels.cc: wider lanes only change how many dimension slots are
// processed per instruction — each slot's mul-then-add sequence and
// rounding are untouched, so clones stay bit-identical to the default
// build. AVX2 has no fused-multiply-add instructions (FMA is a separate
// ISA extension we deliberately do NOT enable), so the compiler cannot
// contract mul+add into a differently-rounded fma.
// (target_clones emits an IFUNC resolver that runs during relocation,
// before the sanitizer runtimes initialize — crashing at startup — so
// clones are disabled under TSan/ASan builds.)
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define LOGIREC_PROP_SIMD_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define LOGIREC_PROP_SIMD_CLONES
#endif

/// dst[k] += w * src[k] for one edge.
LOGIREC_PROP_SIMD_CLONES
void AxpyRow(double w, const double* __restrict__ src, double* dst, int d) {
  for (int k = 0; k < d; ++k) dst[k] += w * src[k];
}

/// Blocked variant: four edges per pass, so each dst[k] is loaded and
/// stored once per group instead of once per edge. The grouped terms are
/// still added one at a time into a scalar temp in edge order, preserving
/// the exact per-element rounding sequence of the one-edge-at-a-time loop.
LOGIREC_PROP_SIMD_CLONES
void AxpyRow4(double w0, const double* __restrict__ s0, double w1,
              const double* __restrict__ s1, double w2,
              const double* __restrict__ s2, double w3,
              const double* __restrict__ s3, double* dst, int d) {
  for (int k = 0; k < d; ++k) {
    double t = dst[k];
    t += w0 * s0[k];
    t += w1 * s1[k];
    t += w2 * s2[k];
    t += w3 * s3[k];
    dst[k] = t;
  }
}

#undef LOGIREC_PROP_SIMD_CLONES

void AddInto(const Matrix& src, Matrix* dst) {
  for (size_t i = 0; i < dst->data().size(); ++i) {
    dst->data()[i] += src.data()[i];
  }
}

/// Widens every row of a flat CSR by `add[r]` slots at the row END,
/// moving existing payloads back-to-front with one memmove per row (no
/// per-element shuffling). The gaps land exactly where a from-scratch
/// flatten of the appended adjacency lists would place the new edges.
void SpliceRowTails(std::vector<int>* offsets, std::vector<int>* cols,
                    std::vector<double>* w1, std::vector<double>* w2,
                    const std::vector<int>& add) {
  long total = 0;
  for (int a : add) total += a;
  if (total == 0) return;
  const int n = static_cast<int>(offsets->size()) - 1;
  const size_t old_size = cols->size();
  cols->resize(old_size + total);
  w1->resize(old_size + total);
  w2->resize(old_size + total);
  long pref = total;  // edges added to rows [0, r] while visiting row r
  for (int r = n - 1; r >= 0 && pref > 0; --r) {
    const long begin = (*offsets)[r];
    const long end = (*offsets)[r + 1];
    const long move = pref - add[r];  // shift applying to row r's payload
    (*offsets)[r + 1] = static_cast<int>(end + pref);
    if (move > 0 && end > begin) {
      const size_t count = static_cast<size_t>(end - begin);
      std::memmove(cols->data() + begin + move, cols->data() + begin,
                   count * sizeof(int));
      std::memmove(w1->data() + begin + move, w1->data() + begin,
                   count * sizeof(double));
      std::memmove(w2->data() + begin + move, w2->data() + begin,
                   count * sizeof(double));
    }
    pref = move;
  }
}

}  // namespace

GcnPropagator::GcnPropagator(const BipartiteGraph* graph, int layers,
                             Norm norm, int num_threads)
    : num_users_(graph->num_users()),
      num_items_(graph->num_items()),
      layers_(layers),
      norm_(norm),
      num_threads_(num_threads) {
  LOGIREC_CHECK(layers >= 0);

  // Flatten the adjacency into CSR, precomputing every normalization
  // weight with the exact expressions of the per-edge reference (an edge
  // implies both endpoint degrees are >= 1, so no zero guards needed):
  //   kReceiver forward to users: 1/|N_u|, adjoint: 1/|N_v|
  //   kReceiver forward to items: 1/|N_v|, adjoint: 1/|N_u|
  //   kSymmetric (self-adjoint):  1/sqrt(|N_u| |N_v|)
  const size_t num_edges = graph->num_edges();
  u_offsets_.reserve(num_users_ + 1);
  u_cols_.reserve(num_edges);
  u_fwd_w_.reserve(num_edges);
  u_adj_w_.reserve(num_edges);
  u_offsets_.push_back(0);
  for (int u = 0; u < num_users_; ++u) {
    const int du = graph->UserDegree(u);
    for (int v : graph->ItemsOf(u)) {
      const int dv = graph->ItemDegree(v);
      u_cols_.push_back(v);
      if (norm_ == Norm::kReceiver) {
        u_fwd_w_.push_back(1.0 / du);
        u_adj_w_.push_back(1.0 / dv);
      } else {
        const double prod = static_cast<double>(du) * dv;
        const double w = 1.0 / std::sqrt(prod);
        u_fwd_w_.push_back(w);
        u_adj_w_.push_back(w);
      }
    }
    u_offsets_.push_back(static_cast<int>(u_cols_.size()));
  }

  v_offsets_.reserve(num_items_ + 1);
  v_cols_.reserve(num_edges);
  v_fwd_w_.reserve(num_edges);
  v_adj_w_.reserve(num_edges);
  v_offsets_.push_back(0);
  for (int v = 0; v < num_items_; ++v) {
    const int dv = graph->ItemDegree(v);
    for (int u : graph->UsersOf(v)) {
      const int du = graph->UserDegree(u);
      v_cols_.push_back(u);
      if (norm_ == Norm::kReceiver) {
        v_fwd_w_.push_back(1.0 / dv);
        v_adj_w_.push_back(1.0 / du);
      } else {
        const double prod = static_cast<double>(du) * dv;
        const double w = 1.0 / std::sqrt(prod);
        v_fwd_w_.push_back(w);
        v_adj_w_.push_back(w);
      }
    }
    v_offsets_.push_back(static_cast<int>(v_cols_.size()));
  }
}

void GcnPropagator::ApplyEdgeUpdates(
    const BipartiteGraph& graph,
    const std::vector<std::pair<int, int>>& new_edges) {
  if (new_edges.empty()) return;
  LOGIREC_CHECK(graph.num_users() == num_users_);
  LOGIREC_CHECK(graph.num_items() == num_items_);

  // Per-row growth and dirty endpoint sets. A row is dirty when its degree
  // changed, which invalidates every weight that reads that degree: the
  // whole dirty row itself, plus single entries in clean rows whose column
  // is a dirty endpoint.
  std::vector<int> add_u(num_users_, 0), add_v(num_items_, 0);
  for (const auto& [u, v] : new_edges) {
    LOGIREC_CHECK(u >= 0 && u < num_users_);
    LOGIREC_CHECK(v >= 0 && v < num_items_);
    ++add_u[u];
    ++add_v[v];
  }
  SpliceRowTails(&u_offsets_, &u_cols_, &u_fwd_w_, &u_adj_w_, add_u);
  SpliceRowTails(&v_offsets_, &v_cols_, &v_fwd_w_, &v_adj_w_, add_v);

  // Rewrite each grown row from the graph's adjacency list wholesale.
  // New entries are not necessarily at the row tail — AddEdge keeps item
  // rows user-ascending, splicing new users into position — so copying
  // the full row is the only fill that reproduces the from-scratch
  // flatten exactly. Weights for these rows are filled by the full-row
  // recompute below (every grown row is dirty).
  for (int u = 0; u < num_users_; ++u) {
    if (add_u[u] == 0) continue;
    const std::vector<int>& items = graph.ItemsOf(u);
    std::copy(items.begin(), items.end(), u_cols_.begin() + u_offsets_[u]);
  }
  for (int v = 0; v < num_items_; ++v) {
    if (add_v[v] == 0) continue;
    const std::vector<int>& users = graph.UsersOf(v);
    std::copy(users.begin(), users.end(), v_cols_.begin() + v_offsets_[v]);
  }

  // Recompute weights with the constructor's exact expressions so the
  // result stays bit-identical to a fresh build over the extended graph.
  // (a) Full rows for dirty users / dirty items.
  for (int u = 0; u < num_users_; ++u) {
    if (add_u[u] == 0) continue;
    const int du = graph.UserDegree(u);
    for (int e = u_offsets_[u]; e < u_offsets_[u + 1]; ++e) {
      const int dv = graph.ItemDegree(u_cols_[e]);
      if (norm_ == Norm::kReceiver) {
        u_fwd_w_[e] = 1.0 / du;
        u_adj_w_[e] = 1.0 / dv;
      } else {
        const double prod = static_cast<double>(du) * dv;
        const double w = 1.0 / std::sqrt(prod);
        u_fwd_w_[e] = w;
        u_adj_w_[e] = w;
      }
    }
  }
  for (int v = 0; v < num_items_; ++v) {
    if (add_v[v] == 0) continue;
    const int dv = graph.ItemDegree(v);
    for (int e = v_offsets_[v]; e < v_offsets_[v + 1]; ++e) {
      const int du = graph.UserDegree(v_cols_[e]);
      if (norm_ == Norm::kReceiver) {
        v_fwd_w_[e] = 1.0 / dv;
        v_adj_w_[e] = 1.0 / du;
      } else {
        const double prod = static_cast<double>(du) * dv;
        const double w = 1.0 / std::sqrt(prod);
        v_fwd_w_[e] = w;
        v_adj_w_[e] = w;
      }
    }
  }
  // (b) Single entries in CLEAN rows whose column degree changed: for each
  // dirty item v, the u-side entries of its clean neighbor users; for each
  // dirty user u, the v-side entries of its clean neighbor items.
  for (int v = 0; v < num_items_; ++v) {
    if (add_v[v] == 0) continue;
    const int dv = graph.ItemDegree(v);
    for (int u : graph.UsersOf(v)) {
      if (add_u[u] != 0) continue;  // whole row already recomputed
      const int du = graph.UserDegree(u);
      for (int e = u_offsets_[u]; e < u_offsets_[u + 1]; ++e) {
        if (u_cols_[e] != v) continue;
        if (norm_ == Norm::kReceiver) {
          u_adj_w_[e] = 1.0 / dv;  // forward 1/du unchanged
        } else {
          const double prod = static_cast<double>(du) * dv;
          const double w = 1.0 / std::sqrt(prod);
          u_fwd_w_[e] = w;
          u_adj_w_[e] = w;
        }
        break;  // edges are unique
      }
    }
  }
  for (int u = 0; u < num_users_; ++u) {
    if (add_u[u] == 0) continue;
    const int du = graph.UserDegree(u);
    for (int v : graph.ItemsOf(u)) {
      if (add_v[v] != 0) continue;
      const int dv = graph.ItemDegree(v);
      for (int e = v_offsets_[v]; e < v_offsets_[v + 1]; ++e) {
        if (v_cols_[e] != u) continue;
        if (norm_ == Norm::kReceiver) {
          v_adj_w_[e] = 1.0 / du;
        } else {
          const double prod = static_cast<double>(du) * dv;
          const double w = 1.0 / std::sqrt(prod);
          v_fwd_w_[e] = w;
          v_adj_w_[e] = w;
        }
        break;
      }
    }
  }
}

void GcnPropagator::Aggregate(const Matrix& src, Matrix* out,
                              const std::vector<int>& offsets,
                              const std::vector<int>& cols,
                              const std::vector<double>& weights) const {
  const int d = src.cols();
  const int n = static_cast<int>(offsets.size()) - 1;
  ParallelFor(0, n, [&](int r) {
    double* dst = out->Row(r).data();
    int e = offsets[r];
    const int end = offsets[r + 1];
    for (; e + 4 <= end; e += 4) {
      AxpyRow4(weights[e], src.Row(cols[e]).data(), weights[e + 1],
               src.Row(cols[e + 1]).data(), weights[e + 2],
               src.Row(cols[e + 2]).data(), weights[e + 3],
               src.Row(cols[e + 3]).data(), dst, d);
    }
    for (; e < end; ++e) {
      AxpyRow(weights[e], src.Row(cols[e]).data(), dst, d);
    }
  }, num_threads_);
}

void GcnPropagator::Forward(const Matrix& zu0, const Matrix& zv0, Matrix* su,
                            Matrix* sv, bool include_layer0) const {
  const int dim = zu0.cols();
  LOGIREC_CHECK(zv0.cols() == dim);
  LOGIREC_CHECK(zu0.rows() == num_users_);
  LOGIREC_CHECK(zv0.rows() == num_items_);

  su->Reset(num_users_, dim);
  sv->Reset(num_items_, dim);
  cu_ = zu0;  // copy-assign reuses the scratch capacity after warmup
  cv_ = zv0;
  if (include_layer0) {
    su->data() = cu_.data();
    sv->data() = cv_.data();
  }
  for (int l = 1; l <= layers_; ++l) {
    nu_ = cu_;  // z^{l+1} = z^l + aggregation
    nv_ = cv_;
    Aggregate(cv_, &nu_, u_offsets_, u_cols_, u_fwd_w_);
    Aggregate(cu_, &nv_, v_offsets_, v_cols_, v_fwd_w_);
    AddInto(nu_, su);
    AddInto(nv_, sv);
    std::swap(cu_, nu_);
    std::swap(cv_, nv_);
  }
}

void GcnPropagator::Backward(const Matrix& gsu, const Matrix& gsv,
                             Matrix* gzu0, Matrix* gzv0,
                             bool include_layer0) const {
  const int dim = gsu.cols();
  LOGIREC_CHECK(gsv.cols() == dim);

  // Adjoint recursion: lambda_u^L = gSU, and for l = L-1 .. 0
  //   lambda_u^l = [l in sum] gSU + lambda_u^{l+1} + Q^T lambda_v^{l+1}
  //   lambda_v^l = [l in sum] gSV + lambda_v^{l+1} + P^T lambda_u^{l+1}.
  if (layers_ == 0) {
    // Output is just layer 0 (when included) — identity map.
    if (include_layer0) {
      AddInto(gsu, gzu0);
      AddInto(gsv, gzv0);
    }
    return;
  }
  cu_ = gsu;  // lambda_u
  cv_ = gsv;  // lambda_v
  for (int l = layers_ - 1; l >= 0; --l) {
    nu_ = cu_;  // identity carry
    nv_ = cv_;
    Aggregate(cv_, &nu_, u_offsets_, u_cols_, u_adj_w_);  // Q^T lambda_v
    Aggregate(cu_, &nv_, v_offsets_, v_cols_, v_adj_w_);  // P^T lambda_u
    const bool in_sum = (l >= 1) || include_layer0;
    if (in_sum) {
      AddInto(gsu, &nu_);
      AddInto(gsv, &nv_);
    }
    std::swap(cu_, nu_);
    std::swap(cv_, nv_);
  }
  AddInto(cu_, gzu0);
  AddInto(cv_, gzv0);
}

}  // namespace logirec::graph
