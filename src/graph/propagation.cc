#include "graph/propagation.h"

#include <cmath>

#include "util/logging.h"
#include "util/parallel.h"

namespace logirec::graph {

GcnPropagator::GcnPropagator(const BipartiteGraph* graph, int layers,
                             Norm norm)
    : graph_(graph), layers_(layers), norm_(norm) {
  LOGIREC_CHECK(layers >= 0);
}

double GcnPropagator::EdgeWeight(int user, int item, bool transpose) const {
  const int du = graph_->UserDegree(user);
  const int dv = graph_->ItemDegree(item);
  switch (norm_) {
    case Norm::kReceiver:
      // Forward aggregation to users divides by |N_u|; the adjoint of the
      // item-side aggregation divides by |N_v| instead.
      if (!transpose) return du > 0 ? 1.0 / du : 0.0;
      return dv > 0 ? 1.0 / dv : 0.0;
    case Norm::kSymmetric: {
      const double prod = static_cast<double>(du) * dv;
      return prod > 0.0 ? 1.0 / std::sqrt(prod) : 0.0;
    }
  }
  return 0.0;
}

void GcnPropagator::AggregateToUsers(const Matrix& items, Matrix* out_users,
                                     bool transpose) const {
  const int dim = items.cols();
  ParallelFor(0, graph_->num_users(), [&](int u) {
    auto dst = out_users->Row(u);
    for (int v : graph_->ItemsOf(u)) {
      const double w = EdgeWeight(u, v, transpose);
      auto src = items.Row(v);
      for (int k = 0; k < dim; ++k) dst[k] += w * src[k];
    }
  });
}

void GcnPropagator::AggregateToItems(const Matrix& users, Matrix* out_items,
                                     bool transpose) const {
  const int dim = users.cols();
  ParallelFor(0, graph_->num_items(), [&](int v) {
    auto dst = out_items->Row(v);
    for (int u : graph_->UsersOf(v)) {
      // Aggregation to items normalizes by the item degree forward; its
      // adjoint uses the user degree. Reuse EdgeWeight with flipped
      // `transpose` to express that symmetry.
      double w = 0.0;
      switch (norm_) {
        case Norm::kReceiver:
          w = transpose ? (graph_->UserDegree(u) > 0
                               ? 1.0 / graph_->UserDegree(u)
                               : 0.0)
                        : (graph_->ItemDegree(v) > 0
                               ? 1.0 / graph_->ItemDegree(v)
                               : 0.0);
          break;
        case Norm::kSymmetric:
          w = EdgeWeight(u, v, /*transpose=*/false);
          break;
      }
      auto src = users.Row(u);
      for (int k = 0; k < dim; ++k) dst[k] += w * src[k];
    }
  });
}

void GcnPropagator::Forward(const Matrix& zu0, const Matrix& zv0, Matrix* su,
                            Matrix* sv, bool include_layer0) const {
  const int dim = zu0.cols();
  LOGIREC_CHECK(zv0.cols() == dim);
  LOGIREC_CHECK(zu0.rows() == graph_->num_users());
  LOGIREC_CHECK(zv0.rows() == graph_->num_items());

  *su = Matrix(zu0.rows(), dim, 0.0);
  *sv = Matrix(zv0.rows(), dim, 0.0);
  Matrix cu = zu0;
  Matrix cv = zv0;
  if (include_layer0) {
    su->data() = cu.data();
    sv->data() = cv.data();
  }
  for (int l = 1; l <= layers_; ++l) {
    Matrix nu = cu;  // z^{l+1} = z^l + aggregation
    Matrix nv = cv;
    AggregateToUsers(cv, &nu, /*transpose=*/false);
    AggregateToItems(cu, &nv, /*transpose=*/false);
    for (size_t i = 0; i < su->data().size(); ++i) su->data()[i] += nu.data()[i];
    for (size_t i = 0; i < sv->data().size(); ++i) sv->data()[i] += nv.data()[i];
    cu = std::move(nu);
    cv = std::move(nv);
  }
}

void GcnPropagator::Backward(const Matrix& gsu, const Matrix& gsv,
                             Matrix* gzu0, Matrix* gzv0,
                             bool include_layer0) const {
  const int dim = gsu.cols();
  LOGIREC_CHECK(gsv.cols() == dim);

  // Adjoint recursion: lambda_u^L = gSU, and for l = L-1 .. 0
  //   lambda_u^l = [l in sum] gSU + lambda_u^{l+1} + Q^T lambda_v^{l+1}
  //   lambda_v^l = [l in sum] gSV + lambda_v^{l+1} + P^T lambda_u^{l+1}.
  Matrix lu = gsu;
  Matrix lv = gsv;
  if (layers_ == 0) {
    // Output is just layer 0 (when included) — identity map.
    if (include_layer0) {
      for (size_t i = 0; i < lu.data().size(); ++i) {
        gzu0->data()[i] += lu.data()[i];
      }
      for (size_t i = 0; i < lv.data().size(); ++i) {
        gzv0->data()[i] += lv.data()[i];
      }
    }
    return;
  }
  for (int l = layers_ - 1; l >= 0; --l) {
    Matrix nlu = lu;  // identity carry
    Matrix nlv = lv;
    AggregateToUsers(lv, &nlu, /*transpose=*/true);   // Q^T lambda_v
    AggregateToItems(lu, &nlv, /*transpose=*/true);   // P^T lambda_u
    const bool in_sum = (l >= 1) || include_layer0;
    if (in_sum) {
      for (size_t i = 0; i < nlu.data().size(); ++i) {
        nlu.data()[i] += gsu.data()[i];
      }
      for (size_t i = 0; i < nlv.data().size(); ++i) {
        nlv.data()[i] += gsv.data()[i];
      }
    }
    lu = std::move(nlu);
    lv = std::move(nlv);
  }
  for (size_t i = 0; i < lu.data().size(); ++i) gzu0->data()[i] += lu.data()[i];
  for (size_t i = 0; i < lv.data().size(); ++i) gzv0->data()[i] += lv.data()[i];
}

}  // namespace logirec::graph
