#ifndef LOGIREC_GRAPH_BIPARTITE_GRAPH_H_
#define LOGIREC_GRAPH_BIPARTITE_GRAPH_H_

#include <vector>

namespace logirec::graph {

/// The user-item interaction graph in CSR-like adjacency form, built from
/// the training fold only (test edges must not leak into propagation).
class BipartiteGraph {
 public:
  /// `user_items[u]` lists the items user u interacted with in training.
  BipartiteGraph(int num_users, int num_items,
                 const std::vector<std::vector<int>>& user_items);

  int num_users() const { return static_cast<int>(user_items_.size()); }
  int num_items() const { return static_cast<int>(item_users_.size()); }

  const std::vector<int>& ItemsOf(int user) const {
    return user_items_[user];
  }
  const std::vector<int>& UsersOf(int item) const {
    return item_users_[item];
  }

  int UserDegree(int user) const {
    return static_cast<int>(user_items_[user].size());
  }
  int ItemDegree(int item) const {
    return static_cast<int>(item_users_[item].size());
  }

  long num_edges() const { return num_edges_; }

  /// Streaming ingest: adds the edge (user, item) to both adjacency
  /// lists, preserving the exact row orders a from-scratch construction
  /// over the extended per-user lists would produce — the user row in
  /// insertion order, the item row user-ascending. CSR-flattening
  /// consumers (GcnPropagator) rely on this to stay element-wise
  /// identical to a rebuild. The caller guarantees the edge is not
  /// already present (data::Dataset::Append rejects duplicates
  /// upstream). NOT thread-safe; ingest and propagation alternate phases.
  void AddEdge(int user, int item);

 private:
  std::vector<std::vector<int>> user_items_;
  std::vector<std::vector<int>> item_users_;
  long num_edges_ = 0;
};

}  // namespace logirec::graph

#endif  // LOGIREC_GRAPH_BIPARTITE_GRAPH_H_
