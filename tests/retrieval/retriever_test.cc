// The retrieval front door: flag-name parsing, BuildRetriever dispatch
// (exact => no index; surrogate-free models => descriptive error), and
// Scorer::RetrieveInto routing — attached index vs exact fallback.

#include "retrieval/retriever.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "math/matrix.h"
#include "retrieval/embedding_scorer.h"
#include "util/rng.h"

namespace logirec::retrieval {
namespace {

constexpr int kItems = 120;
constexpr int kUsers = 10;
constexpr int kDim = 8;

/// A scorer with no linear ranking surrogate (the NeuMF shape): only the
/// scalar bridge is available, so ANN indexing must be refused.
class OpaqueScorer : public eval::Scorer {
 public:
  void ScoreItems(int user, std::vector<double>* out) const override {
    out->assign(kItems, 0.0);
    for (int v = 0; v < kItems; ++v) {
      (*out)[v] = std::sin(0.1 * (user + 1) * (v + 1));
    }
  }

  int num_items() const { return kItems; }
};

class SetFilter : public eval::ItemFilter {
 public:
  explicit SetFilter(std::set<int> excluded)
      : excluded_(std::move(excluded)) {}
  bool Excluded(int item) const override { return excluded_.count(item) > 0; }

 private:
  std::set<int> excluded_;
};

EmbeddingScorer MakeScorer(uint64_t seed) {
  Rng rng(seed);
  math::Matrix users(kUsers, kDim), items(kItems, kDim);
  for (int r = 0; r < kUsers; ++r) {
    for (int c = 0; c < kDim; ++c) users.At(r, c) = rng.Gaussian(0.0, 0.5);
  }
  for (int r = 0; r < kItems; ++r) {
    for (int c = 0; c < kDim; ++c) items.At(r, c) = rng.Gaussian(0.0, 0.5);
  }
  return EmbeddingScorer(std::move(users), std::move(items),
                         SurrogateKind::kDot);
}

std::vector<int> ExactTopK(const eval::Scorer& scorer, int num_items,
                           int user, int k,
                           const eval::ItemFilter* filter = nullptr) {
  std::vector<double> scores;
  scorer.ScoreItems(user, &scores);
  if (filter != nullptr) {
    for (int v = 0; v < num_items; ++v) {
      if (filter->Excluded(v)) {
        scores[v] = -std::numeric_limits<double>::infinity();
      }
    }
  }
  std::vector<int> scratch, out;
  eval::TopKInto(math::ConstSpan(scores.data(), scores.size()), k, &scratch,
                 &out);
  return out;
}

TEST(RetrieverTest, ParseRetrievalKind) {
  auto exact = ParseRetrievalKind("exact");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, RetrievalKind::kExact);
  auto ivf = ParseRetrievalKind("ivf");
  ASSERT_TRUE(ivf.ok());
  EXPECT_EQ(*ivf, RetrievalKind::kIvf);
  auto hnsw = ParseRetrievalKind("hnsw");
  ASSERT_TRUE(hnsw.ok());
  EXPECT_EQ(*hnsw, RetrievalKind::kHnsw);
  EXPECT_FALSE(ParseRetrievalKind("annoy").ok());
  EXPECT_FALSE(ParseRetrievalKind("").ok());
}

TEST(RetrieverTest, KindNamesRoundTrip) {
  for (RetrievalKind kind : {RetrievalKind::kExact, RetrievalKind::kIvf,
                             RetrievalKind::kHnsw}) {
    auto parsed = ParseRetrievalKind(RetrievalKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(RetrieverTest, ExactKindBuildsNoIndex) {
  EmbeddingScorer scorer = MakeScorer(5);
  auto built = BuildRetriever(scorer, RetrievalOptions());
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->get(), nullptr);
}

TEST(RetrieverTest, SurrogateFreeModelIsRefused) {
  OpaqueScorer scorer;
  for (RetrievalKind kind : {RetrievalKind::kIvf, RetrievalKind::kHnsw}) {
    RetrievalOptions options;
    options.kind = kind;
    auto built = BuildRetriever(scorer, options);
    ASSERT_FALSE(built.ok());
    EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(RetrieverTest, RetrieveIntoRoutesThroughAttachedIndex) {
  EmbeddingScorer scorer = MakeScorer(9);
  RetrievalOptions options;
  options.kind = RetrievalKind::kIvf;
  options.ivf.cells = 6;
  options.ivf.nprobe = 6;  // covering probe: result must be exact
  auto built = BuildRetriever(scorer, options);
  ASSERT_TRUE(built.ok());
  ASSERT_NE(built->get(), nullptr);

  eval::RetrieveScratch scratch;
  std::vector<int> detached, attached;
  // Detached: the exact surrogate-scan fallback inside RetrieveInto.
  scorer.RetrieveInto(0, 10, nullptr, &scratch, &detached);
  EXPECT_EQ(detached, ExactTopK(scorer, kItems, 0, 10));

  scorer.AttachRetriever(built->get());
  EXPECT_EQ(scorer.retriever(), built->get());
  for (int u = 0; u < kUsers; ++u) {
    scorer.RetrieveInto(u, 10, nullptr, &scratch, &attached);
    EXPECT_EQ(attached, ExactTopK(scorer, kItems, u, 10)) << "user " << u;
  }

  // Filtered retrieval through the same entry point.
  const std::vector<int> top = ExactTopK(scorer, kItems, 3, 3);
  SetFilter filter(std::set<int>(top.begin(), top.end()));
  scorer.RetrieveInto(3, 10, &filter, &scratch, &attached);
  EXPECT_EQ(attached, ExactTopK(scorer, kItems, 3, 10, &filter));

  scorer.AttachRetriever(nullptr);
  EXPECT_EQ(scorer.retriever(), nullptr);
}

TEST(RetrieverTest, HnswBuildThroughTheFrontDoor) {
  EmbeddingScorer scorer = MakeScorer(15);
  RetrievalOptions options;
  options.kind = RetrievalKind::kHnsw;
  options.hnsw.M = 8;
  options.hnsw.ef_search = kItems;
  auto built = BuildRetriever(scorer, options);
  ASSERT_TRUE(built.ok());
  ASSERT_NE(built->get(), nullptr);
  scorer.AttachRetriever(built->get());
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  for (int u = 0; u < kUsers; ++u) {
    scorer.RetrieveInto(u, 10, nullptr, &scratch, &got);
    EXPECT_EQ(got, ExactTopK(scorer, kItems, u, 10)) << "user " << u;
  }
}

TEST(RetrieverTest, ExactFallbackWorksWithoutAnySurrogate) {
  // A kNone scorer can still RetrieveInto — it just pays for the scalar
  // bridge scan. This is the serving path for NeuMF-style models.
  OpaqueScorer scorer;
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  scorer.RetrieveInto(2, 10, nullptr, &scratch, &got);
  EXPECT_EQ(got, ExactTopK(scorer, kItems, 2, 10));
  const std::vector<int> top = ExactTopK(scorer, kItems, 2, 2);
  SetFilter filter(std::set<int>(top.begin(), top.end()));
  scorer.RetrieveInto(2, 10, &filter, &scratch, &got);
  EXPECT_EQ(got, ExactTopK(scorer, kItems, 2, 10, &filter));
}

}  // namespace
}  // namespace logirec::retrieval
