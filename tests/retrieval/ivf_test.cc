// IVF index contract: a covering probe reproduces the exact full-scan
// ranking item-for-item (same scores, same tie-break), the candidate
// floor defeats filtering starvation, and the build is a pure function of
// the seed — identical at any thread count.

#include "retrieval/ivf.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "math/matrix.h"
#include "retrieval/embedding_scorer.h"
#include "util/rng.h"

namespace logirec::retrieval {
namespace {

constexpr int kItems = 300;
constexpr int kUsers = 12;
constexpr int kDim = 12;

class SetFilter : public eval::ItemFilter {
 public:
  explicit SetFilter(std::set<int> excluded)
      : excluded_(std::move(excluded)) {}
  bool Excluded(int item) const override { return excluded_.count(item) > 0; }

 private:
  std::set<int> excluded_;
};

math::Matrix RandomMatrix(int rows, int cols, uint64_t seed, double lo,
                          double hi) {
  math::Matrix m(rows, cols);
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.At(r, c) = rng.Uniform(lo, hi);
  }
  return m;
}

EmbeddingScorer ScorerFor(SurrogateKind kind, uint64_t seed) {
  const double bound =
      kind == SurrogateKind::kNegPoincareGamma
          ? 0.8 / std::sqrt(static_cast<double>(kDim))
          : 1.0;
  math::Vec bias;
  if (kind == SurrogateKind::kDotBias) {
    Rng rng(seed + 2);
    bias.resize(kItems);
    for (double& b : bias) b = rng.Uniform(-0.5, 0.5);
  }
  return EmbeddingScorer(RandomMatrix(kUsers, kDim, seed + 1, -bound, bound),
                         RandomMatrix(kItems, kDim, seed, -bound, bound),
                         kind, std::move(bias));
}

/// The exact full-scan ranking: kRanking scores, optional mask, TopKInto.
std::vector<int> ExactTopK(const EmbeddingScorer& scorer, int user, int k,
                           const eval::ItemFilter* filter = nullptr) {
  std::vector<double> scores(scorer.num_items());
  scorer.ScoreItemsInto(user, math::Span(scores),
                        eval::ScoreMode::kRanking);
  if (filter != nullptr) {
    for (int v = 0; v < scorer.num_items(); ++v) {
      if (filter->Excluded(v)) {
        scores[v] = -std::numeric_limits<double>::infinity();
      }
    }
  }
  std::vector<int> scratch, out;
  eval::TopKInto(math::ConstSpan(scores.data(), scores.size()), k, &scratch,
                 &out);
  return out;
}

const std::vector<SurrogateKind>& IndexableKinds() {
  static const std::vector<SurrogateKind> kinds = {
      SurrogateKind::kDot,          SurrogateKind::kDotBias,
      SurrogateKind::kNegSquaredEuclidean,
      SurrogateKind::kNegEuclidean, SurrogateKind::kLorentzDot,
      SurrogateKind::kNegPoincareGamma,
  };
  return kinds;
}

TEST(IvfIndexTest, CoveringProbeMatchesExactScanForEveryKind) {
  for (SurrogateKind kind : IndexableKinds()) {
    EmbeddingScorer scorer = ScorerFor(kind, 101);
    IvfOptions options;
    options.cells = 8;
    options.nprobe = 8;  // probe everything: candidates == catalog
    auto index = IvfIndex::Build(scorer.RankingSurrogate(), options);
    ASSERT_EQ(index->num_items(), kItems);
    eval::RetrieveScratch scratch;
    std::vector<int> got;
    for (int u = 0; u < kUsers; ++u) {
      index->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &got);
      EXPECT_EQ(got, ExactTopK(scorer, u, 10))
          << "kind " << static_cast<int>(kind) << " user " << u;
    }
  }
}

TEST(IvfIndexTest, MinCandidatesFloorWidensTheProbe) {
  // nprobe=1 would normally scan a single cell; a min_candidates floor of
  // the whole catalog must widen the probe until the scan is exhaustive,
  // making the result exact regardless of nprobe.
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kNegSquaredEuclidean, 7);
  IvfOptions options;
  options.cells = 16;
  options.nprobe = 1;
  auto index = IvfIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  for (int u = 0; u < kUsers; ++u) {
    index->RetrieveTopK(scorer, u, 10, kItems, nullptr, &scratch, &got);
    EXPECT_EQ(got, ExactTopK(scorer, u, 10)) << "user " << u;
  }
}

TEST(IvfIndexTest, FilterNeverSurfacesExcludedItems) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kDot, 13);
  IvfOptions options;
  options.cells = 8;
  options.nprobe = 8;
  auto index = IvfIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  for (int u = 0; u < kUsers; ++u) {
    // Exclude the unfiltered winners: the filtered result must be exactly
    // the exact ranking with those items masked, never merely truncated.
    const std::vector<int> top = ExactTopK(scorer, u, 3);
    SetFilter filter(std::set<int>(top.begin(), top.end()));
    index->RetrieveTopK(scorer, u, 10, 10, &filter, &scratch, &got);
    EXPECT_EQ(got, ExactTopK(scorer, u, 10, &filter)) << "user " << u;
    for (int v : top) {
      EXPECT_EQ(std::count(got.begin(), got.end(), v), 0);
    }
  }
}

TEST(IvfIndexTest, BuildIsThreadCountInvariant) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kNegPoincareGamma, 29);
  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  std::vector<std::unique_ptr<IvfIndex>> indexes;
  for (int threads : {1, 2, 8}) {
    IvfOptions options;
    options.cells = 12;
    options.nprobe = 3;
    options.num_threads = threads;
    indexes.push_back(IvfIndex::Build(spec, options));
  }
  EXPECT_EQ(indexes[0]->Fingerprint(), indexes[1]->Fingerprint());
  EXPECT_EQ(indexes[0]->Fingerprint(), indexes[2]->Fingerprint());
  // And the retrieval output (not just the structure) is identical.
  eval::RetrieveScratch scratch;
  std::vector<int> a, b, c;
  for (int u = 0; u < kUsers; ++u) {
    indexes[0]->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &a);
    indexes[1]->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &b);
    indexes[2]->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &c);
    EXPECT_EQ(a, b) << "user " << u;
    EXPECT_EQ(a, c) << "user " << u;
  }
}

TEST(IvfIndexTest, SeedChangesTheClustering) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kDot, 31);
  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  IvfOptions options;
  options.cells = 12;
  auto a = IvfIndex::Build(spec, options);
  options.seed = 99;
  auto b = IvfIndex::Build(spec, options);
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());
}

TEST(IvfIndexTest, DefaultCellCountIsSqrtN) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kDot, 41);
  auto index = IvfIndex::Build(scorer.RankingSurrogate(), IvfOptions());
  EXPECT_EQ(index->cells(),
            static_cast<int>(std::lround(std::sqrt(kItems))));
  // Every item lands in exactly one cell.
  int total = 0;
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  index->RetrieveTopK(scorer, 0, kItems, kItems, nullptr, &scratch, &got);
  total = static_cast<int>(got.size());
  EXPECT_EQ(total, kItems);
  std::sort(got.begin(), got.end());
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
}

TEST(IvfIndexTest, EdgeCases) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kDot, 43);
  IvfOptions options;
  options.cells = 8;
  options.nprobe = 8;
  auto index = IvfIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got{1, 2, 3};
  index->RetrieveTopK(scorer, 0, 0, 0, nullptr, &scratch, &got);
  EXPECT_TRUE(got.empty());  // k == 0 clears stale output
  // k beyond the catalog returns the full exact ranking.
  index->RetrieveTopK(scorer, 0, kItems + 50, kItems, nullptr, &scratch,
                      &got);
  EXPECT_EQ(got, ExactTopK(scorer, 0, kItems));
}

TEST(IvfIndexTest, PartialProbeKeepsUsefulRecall) {
  // Not a gate (the bench owns the recall/speedup gates) — a sanity floor
  // far below the benched operating point, deterministic by seed.
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kNegSquaredEuclidean, 47);
  IvfOptions options;
  options.nprobe = 4;  // of sqrt(300) ~ 17 cells
  auto index = IvfIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  int hit = 0, total = 0;
  for (int u = 0; u < kUsers; ++u) {
    const std::vector<int> want = ExactTopK(scorer, u, 10);
    index->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &got);
    const std::set<int> got_set(got.begin(), got.end());
    for (int v : want) hit += got_set.count(v);
    total += static_cast<int>(want.size());
  }
  EXPECT_GE(static_cast<double>(hit) / total, 0.5);
}

}  // namespace
}  // namespace logirec::retrieval
