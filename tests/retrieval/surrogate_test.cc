// Surrogate-space contract: every augmented-MIPS lift is an affine,
// positive-slope transform of the kRanking score (so ANN structure in the
// augmented dot space IS top-k structure in the original geometry), and
// the scalar per-item score — the HNSW rerank path — reproduces the
// blocked kernel scans bit-for-bit.

#include "retrieval/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "math/kernels.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "retrieval/embedding_scorer.h"
#include "util/rng.h"

namespace logirec::retrieval {
namespace {

constexpr int kItems = 200;
constexpr int kDim = 12;

math::Matrix GaussianMatrix(int rows, int cols, uint64_t seed,
                            double scale) {
  math::Matrix m(rows, cols);
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.At(r, c) = rng.Gaussian(0.0, scale);
  }
  return m;
}

/// Rows with ||row|| <= radius (coordinate-wise bounded), for the
/// Poincare kind where the lift divides by 1 - ||v||^2.
math::Matrix BallMatrix(int rows, int cols, uint64_t seed, double radius) {
  math::Matrix m(rows, cols);
  Rng rng(seed);
  const double bound = radius / std::sqrt(static_cast<double>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.At(r, c) = rng.Uniform(-bound, bound);
    }
  }
  return m;
}

math::Matrix ItemsFor(SurrogateKind kind, uint64_t seed) {
  return kind == SurrogateKind::kNegPoincareGamma
             ? BallMatrix(kItems, kDim, seed, 0.8)
             : GaussianMatrix(kItems, kDim, seed, 0.5);
}

EmbeddingScorer ScorerFor(SurrogateKind kind, uint64_t seed) {
  math::Matrix users = kind == SurrogateKind::kNegPoincareGamma
                           ? BallMatrix(8, kDim, seed + 1, 0.8)
                           : GaussianMatrix(8, kDim, seed + 1, 0.5);
  math::Vec bias;
  if (kind == SurrogateKind::kDotBias) {
    Rng rng(seed + 2);
    bias.resize(kItems);
    for (double& b : bias) b = rng.Gaussian(0.0, 0.3);
  }
  return EmbeddingScorer(std::move(users), ItemsFor(kind, seed), kind,
                         std::move(bias));
}

const std::vector<SurrogateKind>& AllKinds() {
  static const std::vector<SurrogateKind> kinds = {
      SurrogateKind::kDot,          SurrogateKind::kDotBias,
      SurrogateKind::kNegSquaredEuclidean,
      SurrogateKind::kNegEuclidean, SurrogateKind::kLorentzDot,
      SurrogateKind::kNegPoincareGamma,
  };
  return kinds;
}

TEST(SurrogateTest, AugmentedDims) {
  for (SurrogateKind kind : AllKinds()) {
    EmbeddingScorer scorer = ScorerFor(kind, 11);
    const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
    int want = kDim;
    if (kind == SurrogateKind::kDotBias ||
        kind == SurrogateKind::kNegSquaredEuclidean ||
        kind == SurrogateKind::kNegEuclidean) {
      want = kDim + 1;
    } else if (kind == SurrogateKind::kNegPoincareGamma) {
      want = kDim + 2;
    }
    EXPECT_EQ(AugmentedDim(spec), want) << static_cast<int>(kind);
  }
}

TEST(SurrogateTest, ScalarScoreBitIdenticalToKernelScan) {
  // SurrogateScore must reproduce the blocked-kernel scan value at every
  // item EXACTLY (same floating-point rounding sequence) — the retrieval
  // contract says ANN + rerank equals the full scan item-for-item, which
  // only holds if the rerank scores carry identical bits.
  for (SurrogateKind kind : AllKinds()) {
    EmbeddingScorer scorer = ScorerFor(kind, 23);
    const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
    std::vector<double> scan(kItems);
    math::Vec query_scratch;
    for (int u = 0; u < scorer.num_users(); ++u) {
      scorer.ScoreItemsInto(u, math::Span(scan), eval::ScoreMode::kRanking);
      const math::ConstSpan q = scorer.RankingQuery(u, &query_scratch);
      for (int v = 0; v < kItems; ++v) {
        ASSERT_EQ(SurrogateScore(spec, q, v), scan[v])
            << "kind " << static_cast<int>(kind) << " user " << u
            << " item " << v;
      }
    }
  }
}

TEST(SurrogateTest, AugmentedDotIsPositiveAffineInSurrogateScore) {
  // The documented reductions: <q~, v~> = a * f(s_v) + b with a > 0 and f
  // strictly increasing. Verified numerically per kind.
  for (SurrogateKind kind : AllKinds()) {
    EmbeddingScorer scorer = ScorerFor(kind, 37);
    const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
    math::Matrix aug_items;
    BuildAugmentedItems(spec, &aug_items);
    ASSERT_EQ(aug_items.rows(), kItems);
    ASSERT_EQ(aug_items.cols(), AugmentedDim(spec));

    std::vector<double> scores(kItems);
    math::Vec query_scratch, aug_query;
    for (int u = 0; u < scorer.num_users(); ++u) {
      const math::ConstSpan q = scorer.RankingQuery(u, &query_scratch);
      AugmentQuery(spec, q, &aug_query);
      ASSERT_EQ(static_cast<int>(aug_query.size()), aug_items.cols());
      scorer.ScoreItemsInto(u, math::Span(scores),
                            eval::ScoreMode::kRanking);
      const double unorm_sq = math::SquaredNorm(q);
      for (int v = 0; v < kItems; ++v) {
        const double dot = math::Dot(math::ConstSpan(aug_query),
                                     aug_items.Row(v));
        const double s = scores[v];
        double want = 0.0;
        switch (kind) {
          case SurrogateKind::kDot:
          case SurrogateKind::kDotBias:
          case SurrogateKind::kLorentzDot:
            want = s;  // the lift is the identity transform
            break;
          case SurrogateKind::kNegSquaredEuclidean:
            want = s + unorm_sq;  // 2u.v - ||v||^2 = -||u-v||^2 + ||u||^2
            break;
          case SurrogateKind::kNegEuclidean:
            want = -(s * s) + unorm_sq;  // s = -||u-v|| <= 0
            break;
          case SurrogateKind::kNegPoincareGamma: {
            // s = -(1 + 2||u-v||^2/(alpha_u beta_v)), dot = -||u-v||^2/beta_v
            const double alpha =
                std::max(1.0 - unorm_sq, 1e-5);
            want = (s + 1.0) * alpha / 2.0;
            break;
          }
          case SurrogateKind::kNone:
            FAIL();
        }
        EXPECT_NEAR(dot, want, 1e-9 * (1.0 + std::abs(want)))
            << "kind " << static_cast<int>(kind) << " user " << u
            << " item " << v;
      }
    }
  }
}

TEST(SurrogateTest, AugmentedDotOrderMatchesSurrogateOrder) {
  // End to end: ranking all items by augmented dot gives the same
  // permutation as ranking by surrogate score (continuous random data, so
  // no ties and fp noise cannot flip well-separated neighbors).
  for (SurrogateKind kind : AllKinds()) {
    EmbeddingScorer scorer = ScorerFor(kind, 53);
    const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
    math::Matrix aug_items;
    BuildAugmentedItems(spec, &aug_items);
    std::vector<double> scores(kItems);
    math::Vec query_scratch, aug_query;
    for (int u = 0; u < scorer.num_users(); ++u) {
      const math::ConstSpan q = scorer.RankingQuery(u, &query_scratch);
      AugmentQuery(spec, q, &aug_query);
      scorer.ScoreItemsInto(u, math::Span(scores),
                            eval::ScoreMode::kRanking);
      std::vector<std::pair<double, int>> by_dot, by_score;
      for (int v = 0; v < kItems; ++v) {
        by_dot.emplace_back(
            math::Dot(math::ConstSpan(aug_query), aug_items.Row(v)), v);
        by_score.emplace_back(scores[v], v);
      }
      std::sort(by_dot.begin(), by_dot.end(), BetterScored);
      std::sort(by_score.begin(), by_score.end(), BetterScored);
      for (int i = 0; i < kItems; ++i) {
        ASSERT_EQ(by_dot[i].second, by_score[i].second)
            << "kind " << static_cast<int>(kind) << " user " << u
            << " rank " << i;
      }
    }
  }
}

TEST(SurrogateTest, BuildAugmentedItemsThreadCountInvariant) {
  for (SurrogateKind kind : AllKinds()) {
    EmbeddingScorer scorer = ScorerFor(kind, 71);
    const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
    math::Matrix one, eight;
    BuildAugmentedItems(spec, &one, /*num_threads=*/1);
    BuildAugmentedItems(spec, &eight, /*num_threads=*/8);
    ASSERT_EQ(one.rows(), eight.rows());
    ASSERT_EQ(one.cols(), eight.cols());
    for (int r = 0; r < one.rows(); ++r) {
      for (int c = 0; c < one.cols(); ++c) {
        ASSERT_EQ(one.At(r, c), eight.At(r, c)) << r << "," << c;
      }
    }
  }
}

TEST(SurrogateTest, BetterScoredIsTheTopKOrder) {
  EXPECT_TRUE(BetterScored({2.0, 5}, {1.0, 0}));
  EXPECT_FALSE(BetterScored({1.0, 0}, {2.0, 5}));
  EXPECT_TRUE(BetterScored({1.0, 2}, {1.0, 3}));   // tie: smaller id first
  EXPECT_FALSE(BetterScored({1.0, 3}, {1.0, 2}));
  EXPECT_FALSE(BetterScored({1.0, 2}, {1.0, 2}));  // irreflexive
}

}  // namespace
}  // namespace logirec::retrieval
