// HNSW index contract: a catalog-wide beam reproduces the exact ranking
// (the graph search becomes an exhaustive walk of the connected
// component), the candidate floor widens the beam past ef_search, and the
// batched build is a pure function of the seed at any thread count.

#include "retrieval/hnsw.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "math/matrix.h"
#include "retrieval/embedding_scorer.h"
#include "util/rng.h"

namespace logirec::retrieval {
namespace {

constexpr int kItems = 300;
constexpr int kUsers = 12;
constexpr int kDim = 12;

class SetFilter : public eval::ItemFilter {
 public:
  explicit SetFilter(std::set<int> excluded)
      : excluded_(std::move(excluded)) {}
  bool Excluded(int item) const override { return excluded_.count(item) > 0; }

 private:
  std::set<int> excluded_;
};

math::Matrix RandomMatrix(int rows, int cols, uint64_t seed, double lo,
                          double hi) {
  math::Matrix m(rows, cols);
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.At(r, c) = rng.Uniform(lo, hi);
  }
  return m;
}

EmbeddingScorer ScorerFor(SurrogateKind kind, uint64_t seed) {
  const double bound =
      kind == SurrogateKind::kNegPoincareGamma
          ? 0.8 / std::sqrt(static_cast<double>(kDim))
          : 1.0;
  math::Vec bias;
  if (kind == SurrogateKind::kDotBias) {
    Rng rng(seed + 2);
    bias.resize(kItems);
    for (double& b : bias) b = rng.Uniform(-0.5, 0.5);
  }
  return EmbeddingScorer(RandomMatrix(kUsers, kDim, seed + 1, -bound, bound),
                         RandomMatrix(kItems, kDim, seed, -bound, bound),
                         kind, std::move(bias));
}

std::vector<int> ExactTopK(const EmbeddingScorer& scorer, int user, int k,
                           const eval::ItemFilter* filter = nullptr) {
  std::vector<double> scores(scorer.num_items());
  scorer.ScoreItemsInto(user, math::Span(scores),
                        eval::ScoreMode::kRanking);
  if (filter != nullptr) {
    for (int v = 0; v < scorer.num_items(); ++v) {
      if (filter->Excluded(v)) {
        scores[v] = -std::numeric_limits<double>::infinity();
      }
    }
  }
  std::vector<int> scratch, out;
  eval::TopKInto(math::ConstSpan(scores.data(), scores.size()), k, &scratch,
                 &out);
  return out;
}

const std::vector<SurrogateKind>& IndexableKinds() {
  static const std::vector<SurrogateKind> kinds = {
      SurrogateKind::kDot,          SurrogateKind::kDotBias,
      SurrogateKind::kNegSquaredEuclidean,
      SurrogateKind::kNegEuclidean, SurrogateKind::kLorentzDot,
      SurrogateKind::kNegPoincareGamma,
  };
  return kinds;
}

TEST(HnswIndexTest, CatalogWideBeamMatchesExactScanForEveryKind) {
  // With ef >= n the beam never saturates, so SearchLayer exhausts the
  // level-0 component and the exact rerank sees every (reachable) item —
  // the result must equal the full scan item-for-item.
  for (SurrogateKind kind : IndexableKinds()) {
    EmbeddingScorer scorer = ScorerFor(kind, 211);
    HnswOptions options;
    options.M = 8;
    options.ef_search = kItems;
    auto index = HnswIndex::Build(scorer.RankingSurrogate(), options);
    ASSERT_EQ(index->num_items(), kItems);
    ASSERT_GE(index->max_level(), 0);
    eval::RetrieveScratch scratch;
    std::vector<int> got;
    for (int u = 0; u < kUsers; ++u) {
      index->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &got);
      EXPECT_EQ(got, ExactTopK(scorer, u, 10))
          << "kind " << static_cast<int>(kind) << " user " << u;
    }
  }
}

TEST(HnswIndexTest, MinCandidatesFloorWidensTheBeam) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kNegSquaredEuclidean, 7);
  HnswOptions options;
  options.M = 8;
  options.ef_search = 4;  // far too narrow on its own
  auto index = HnswIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  for (int u = 0; u < kUsers; ++u) {
    index->RetrieveTopK(scorer, u, 10, kItems, nullptr, &scratch, &got);
    EXPECT_EQ(got, ExactTopK(scorer, u, 10)) << "user " << u;
  }
}

TEST(HnswIndexTest, FilterNeverSurfacesExcludedItems) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kLorentzDot, 17);
  HnswOptions options;
  options.M = 8;
  options.ef_search = kItems;
  auto index = HnswIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  for (int u = 0; u < kUsers; ++u) {
    const std::vector<int> top = ExactTopK(scorer, u, 3);
    SetFilter filter(std::set<int>(top.begin(), top.end()));
    index->RetrieveTopK(scorer, u, 10, 10, &filter, &scratch, &got);
    EXPECT_EQ(got, ExactTopK(scorer, u, 10, &filter)) << "user " << u;
  }
}

TEST(HnswIndexTest, BuildIsThreadCountInvariant) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kNegPoincareGamma, 29);
  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  std::vector<std::unique_ptr<HnswIndex>> indexes;
  for (int threads : {1, 2, 8}) {
    HnswOptions options;
    options.M = 8;
    options.ef_search = 32;
    options.num_threads = threads;
    indexes.push_back(HnswIndex::Build(spec, options));
  }
  EXPECT_EQ(indexes[0]->Fingerprint(), indexes[1]->Fingerprint());
  EXPECT_EQ(indexes[0]->Fingerprint(), indexes[2]->Fingerprint());
  eval::RetrieveScratch scratch;
  std::vector<int> a, b, c;
  for (int u = 0; u < kUsers; ++u) {
    indexes[0]->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &a);
    indexes[1]->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &b);
    indexes[2]->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &c);
    EXPECT_EQ(a, b) << "user " << u;
    EXPECT_EQ(a, c) << "user " << u;
  }
}

TEST(HnswIndexTest, RebuildsAreIdenticalAndSeedSensitive) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kDot, 31);
  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  HnswOptions options;
  options.M = 8;
  auto a = HnswIndex::Build(spec, options);
  auto b = HnswIndex::Build(spec, options);
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());
  options.seed = 99;
  auto c = HnswIndex::Build(spec, options);
  EXPECT_NE(a->Fingerprint(), c->Fingerprint());
}

TEST(HnswIndexTest, BatchSizeDoesNotChangeSearchQuality) {
  // Different batch sizes produce different (but equally valid) graphs;
  // with a catalog-wide beam both must still reproduce the exact scan.
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kDot, 59);
  const eval::RankingSurrogateSpec spec = scorer.RankingSurrogate();
  for (int batch : {1, 16, 512}) {
    HnswOptions options;
    options.M = 8;
    options.ef_search = kItems;
    options.batch = batch;
    auto index = HnswIndex::Build(spec, options);
    eval::RetrieveScratch scratch;
    std::vector<int> got;
    for (int u = 0; u < kUsers; u += 3) {
      index->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &got);
      EXPECT_EQ(got, ExactTopK(scorer, u, 10))
          << "batch " << batch << " user " << u;
    }
  }
}

TEST(HnswIndexTest, EdgeCases) {
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kDot, 61);
  HnswOptions options;
  options.M = 8;
  options.ef_search = kItems;
  auto index = HnswIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got{4, 5};
  index->RetrieveTopK(scorer, 0, 0, 0, nullptr, &scratch, &got);
  EXPECT_TRUE(got.empty());
  index->RetrieveTopK(scorer, 0, kItems + 50, kItems, nullptr, &scratch,
                      &got);
  EXPECT_EQ(got, ExactTopK(scorer, 0, kItems));
}

TEST(HnswIndexTest, ModestBeamKeepsUsefulRecall) {
  // Sanity floor only; the bench owns the real recall gate.
  EmbeddingScorer scorer = ScorerFor(SurrogateKind::kNegSquaredEuclidean, 67);
  HnswOptions options;
  options.M = 8;
  options.ef_search = 32;
  auto index = HnswIndex::Build(scorer.RankingSurrogate(), options);
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  int hit = 0, total = 0;
  for (int u = 0; u < kUsers; ++u) {
    const std::vector<int> want = ExactTopK(scorer, u, 10);
    index->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &got);
    const std::set<int> got_set(got.begin(), got.end());
    for (int v : want) hit += got_set.count(v);
    total += static_cast<int>(want.size());
  }
  EXPECT_GE(static_cast<double>(hit) / total, 0.5);
}

}  // namespace
}  // namespace logirec::retrieval
