// Compact retrieval: index structure is precision- and thread-count-
// independent (IVF clustering and the HNSW graph are built in f64, so
// their Fingerprints match across {f64, f32, int8} x build threads
// {1, 2, 8}), compact retrieval is bit-deterministic across build
// parallelism, a covering IVF probe at a compact precision reproduces
// the compact full scan exactly (the ScoreSubset == ScoreInto contract,
// end to end), and compact indexes actually shrink resident bytes.

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/compact.h"
#include "eval/metrics.h"
#include "math/matrix.h"
#include "retrieval/embedding_scorer.h"
#include "retrieval/hnsw.h"
#include "retrieval/ivf.h"
#include "retrieval/retriever.h"
#include "util/rng.h"

namespace logirec::retrieval {
namespace {

constexpr int kItems = 300;
constexpr int kUsers = 16;
constexpr int kDim = 8;

EmbeddingScorer MakeScorer(SurrogateKind kind, uint64_t seed) {
  Rng rng(seed);
  math::Matrix users(kUsers, kDim), items(kItems, kDim);
  for (int r = 0; r < kUsers; ++r) {
    for (int c = 0; c < kDim; ++c) users.At(r, c) = rng.Gaussian(0.0, 0.4);
  }
  for (int r = 0; r < kItems; ++r) {
    for (int c = 0; c < kDim; ++c) items.At(r, c) = rng.Gaussian(0.0, 0.4);
  }
  if (kind == SurrogateKind::kLorentzDot) {
    for (math::Matrix* m : {&users, &items}) {
      for (int r = 0; r < m->rows(); ++r) {
        double sq = 0.0;
        for (int c = 1; c < kDim; ++c) sq += m->At(r, c) * m->At(r, c);
        m->At(r, 0) = std::sqrt(1.0 + sq);
      }
    }
  }
  return EmbeddingScorer(std::move(users), std::move(items), kind);
}

const eval::ScorePrecision kPrecisions[] = {eval::ScorePrecision::kF64,
                                            eval::ScorePrecision::kF32,
                                            eval::ScorePrecision::kInt8};

TEST(CompactRetrievalTest, IvfFingerprintIndependentOfPrecisionAndThreads) {
  for (SurrogateKind kind :
       {SurrogateKind::kDot, SurrogateKind::kLorentzDot}) {
    EmbeddingScorer scorer = MakeScorer(kind, 5);
    IvfOptions options;
    options.cells = 12;
    options.num_threads = 1;
    options.precision = eval::ScorePrecision::kF64;
    auto reference = IvfIndex::Build(scorer.RankingSurrogate(), options);
    ASSERT_NE(reference, nullptr);
    const uint64_t want = reference->Fingerprint();
    for (eval::ScorePrecision precision : kPrecisions) {
      for (int threads : {1, 2, 8}) {
        options.precision = precision;
        options.num_threads = threads;
        auto index = IvfIndex::Build(scorer.RankingSurrogate(), options);
        ASSERT_NE(index, nullptr);
        EXPECT_EQ(index->Fingerprint(), want)
            << eval::ScorePrecisionName(precision) << " threads=" << threads;
      }
    }
  }
}

TEST(CompactRetrievalTest, HnswFingerprintIndependentOfPrecisionAndThreads) {
  EmbeddingScorer scorer = MakeScorer(SurrogateKind::kDot, 9);
  HnswOptions options;
  options.M = 8;
  options.ef_construction = 48;
  options.num_threads = 1;
  auto reference = HnswIndex::Build(scorer.RankingSurrogate(), options);
  ASSERT_NE(reference, nullptr);
  const uint64_t want = reference->Fingerprint();
  for (eval::ScorePrecision precision : kPrecisions) {
    for (int threads : {1, 2, 8}) {
      options.precision = precision;
      options.num_threads = threads;
      auto index = HnswIndex::Build(scorer.RankingSurrogate(), options);
      ASSERT_NE(index, nullptr);
      EXPECT_EQ(index->Fingerprint(), want)
          << eval::ScorePrecisionName(precision) << " threads=" << threads;
    }
  }
}

/// Retrieved rankings at a compact precision are identical whatever the
/// build thread count — the acceptance-gate determinism check.
TEST(CompactRetrievalTest, CompactRetrievalDeterministicAcrossBuildThreads) {
  EmbeddingScorer scorer = MakeScorer(SurrogateKind::kDot, 13);
  for (eval::ScorePrecision precision :
       {eval::ScorePrecision::kF32, eval::ScorePrecision::kInt8}) {
    for (RetrievalKind kind : {RetrievalKind::kIvf, RetrievalKind::kHnsw}) {
      std::vector<std::vector<int>> baseline;
      for (int threads : {1, 2, 8}) {
        RetrievalOptions options;
        options.kind = kind;
        options.precision = precision;
        options.ivf.cells = 10;
        options.ivf.nprobe = 4;
        options.ivf.num_threads = threads;
        options.hnsw.M = 8;
        options.hnsw.ef_construction = 48;
        options.hnsw.num_threads = threads;
        auto built = BuildRetriever(scorer, options);
        ASSERT_TRUE(built.ok());
        ASSERT_NE(built->get(), nullptr);
        eval::RetrieveScratch scratch;
        std::vector<std::vector<int>> lists(kUsers);
        for (int u = 0; u < kUsers; ++u) {
          (*built)->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch,
                                 &lists[u]);
        }
        if (baseline.empty()) {
          baseline = std::move(lists);
        } else {
          EXPECT_EQ(lists, baseline)
              << RetrievalKindName(kind) << " "
              << eval::ScorePrecisionName(precision)
              << " threads=" << threads;
        }
      }
    }
  }
}

/// A covering probe (nprobe == cells) at a compact precision must equal
/// the compact full scan exactly: every item is scanned through
/// ScoreSubset-style cell kernels, so any divergence from ScoreInto +
/// TopK would betray a subset/full-scan mismatch.
TEST(CompactRetrievalTest, CoveringIvfProbeMatchesCompactFullScan) {
  for (SurrogateKind kind :
       {SurrogateKind::kDot, SurrogateKind::kLorentzDot}) {
    EmbeddingScorer scorer = MakeScorer(kind, 21);
    for (eval::ScorePrecision precision :
         {eval::ScorePrecision::kF32, eval::ScorePrecision::kInt8}) {
      RetrievalOptions options;
      options.kind = RetrievalKind::kIvf;
      options.precision = precision;
      options.ivf.cells = 8;
      options.ivf.nprobe = 8;
      auto built = BuildRetriever(scorer, options);
      ASSERT_TRUE(built.ok());

      eval::CompactCatalog catalog;
      ASSERT_TRUE(
          catalog.Build(scorer.RankingSurrogate(), precision).ok());

      eval::RetrieveScratch scratch;
      std::vector<int> got, scratch_ids, want;
      math::Vec query_scratch;
      math::VecF query, scores(kItems);
      for (int u = 0; u < kUsers; ++u) {
        (*built)->RetrieveTopK(scorer, u, 10, 10, nullptr, &scratch, &got);
        eval::CompactCatalog::NarrowQuery(
            scorer.RankingQuery(u, &query_scratch), &query);
        catalog.ScoreInto(math::ConstSpanF(query.data(), query.size()),
                          math::SpanF(scores.data(), scores.size()));
        eval::TopKInto(math::ConstSpanF(scores.data(), scores.size()), 10,
                       &scratch_ids, &want);
        EXPECT_EQ(got, want)
            << "kind=" << static_cast<int>(kind) << " user=" << u << " "
            << eval::ScorePrecisionName(precision);
      }
    }
  }
}

/// Compact resident state is genuinely smaller: f32 at most ~0.55x and
/// int8 at most ~0.2x of the f64 IVF cell catalogs (ids/centroids are
/// shared overhead, hence the slack vs the pure 0.5x / 0.125x payload
/// ratios).
TEST(CompactRetrievalTest, CompactIndexesShrinkResidentBytes) {
  EmbeddingScorer scorer = MakeScorer(SurrogateKind::kDot, 31);
  const auto resident = [&](eval::ScorePrecision precision) {
    IvfOptions options;
    options.cells = 12;
    options.precision = precision;
    auto index = IvfIndex::Build(scorer.RankingSurrogate(), options);
    EXPECT_NE(index, nullptr);
    return index->ResidentBytes();
  };
  const size_t f64 = resident(eval::ScorePrecision::kF64);
  const size_t f32 = resident(eval::ScorePrecision::kF32);
  const size_t i8 = resident(eval::ScorePrecision::kInt8);
  ASSERT_GT(f64, 0u);
  EXPECT_LT(f32, f64);
  EXPECT_LT(i8, f32);
}

}  // namespace
}  // namespace logirec::retrieval
