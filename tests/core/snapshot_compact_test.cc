// Compact (v2) snapshots: dtype tags round-trip, f32/int8 re-encoding is
// idempotent (write -> read -> write is byte-identical), v1 f64 files
// stay byte-identical to the pre-dtype format, compact files hit their
// compression targets, and corruption that survives the CRC — a
// non-finite payload value — is rejected with a descriptive error.

#include "core/snapshot.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "util/crc32.h"

namespace logirec::core {
namespace {

class SnapshotCompactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_snapshot_compact_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 80;
    config.seed = 7;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TrainConfig FastConfig() const {
    TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 5;
    return config;
  }

  SnapshotHeader HeaderFor(const TrainConfig& config) const {
    SnapshotHeader header;
    header.dim = config.dim;
    header.layers = config.layers;
    header.num_users = dataset_.num_users;
    header.num_items = dataset_.num_items;
    return header;
  }

  std::unique_ptr<Recommender> Train(const std::string& name) {
    const TrainConfig config = FastConfig();
    auto model = baselines::MakeModel(name, config);
    EXPECT_TRUE(model.ok()) << name;
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok()) << name;
    return std::move(*model);
  }

  std::string PathFor(const std::string& tag) const {
    return dir_ + "/" + tag + ".snap";
  }

  std::vector<unsigned char> Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
  }

  void Dump(const std::string& path,
            const std::vector<unsigned char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }

  std::string dir_;
  data::Dataset dataset_;
  data::Split split_;
};

uint32_t U32At(const std::vector<unsigned char>& bytes, size_t at) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + at, 4);
  return v;
}

void PutU32At(std::vector<unsigned char>* bytes, size_t at, uint32_t v) {
  std::memcpy(bytes->data() + at, &v, 4);
}

/// Byte offset of the first tensor record in a snapshot file (the fixed
/// header through header_crc), from the v1/v2 layout in snapshot.h.
size_t FirstRecordOffset(const std::vector<unsigned char>& bytes) {
  const size_t name_len = U32At(bytes, 28);
  // magic+version+flags (12) + dim/layers/users/items (16) + name_len
  // field (4) + name + v2 dtype tag (4, version >= 2 only) +
  // n_matrices/n_vectors/n_scalars (12) + header_crc (4).
  const uint32_t version = U32At(bytes, 4);
  return 12 + 16 + 4 + name_len + (version >= 2 ? 4 : 0) + 12 + 4;
}

TEST_F(SnapshotCompactTest, DtypeNamesRoundTrip) {
  for (SnapshotDtype dtype :
       {SnapshotDtype::kF64, SnapshotDtype::kF32, SnapshotDtype::kInt8}) {
    auto parsed = ParseSnapshotDtype(SnapshotDtypeName(dtype));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, dtype);
  }
  EXPECT_FALSE(ParseSnapshotDtype("f16").ok());
  EXPECT_FALSE(ParseSnapshotDtype("").ok());
}

TEST_F(SnapshotCompactTest, F64WritesVersion1CompactWritesVersion2) {
  auto model = Train("LogiRec++");
  const TrainConfig config = FastConfig();
  for (SnapshotDtype dtype :
       {SnapshotDtype::kF64, SnapshotDtype::kF32, SnapshotDtype::kInt8}) {
    const std::string path = PathFor(SnapshotDtypeName(dtype));
    ASSERT_TRUE(
        ModelSnapshot::Write(*model, HeaderFor(config), path, dtype).ok());
    const std::vector<unsigned char> bytes = Slurp(path);
    EXPECT_EQ(U32At(bytes, 4), dtype == SnapshotDtype::kF64
                                   ? ModelSnapshot::kVersion
                                   : ModelSnapshot::kVersionCompact)
        << SnapshotDtypeName(dtype);
    auto header = ModelSnapshot::Peek(path);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->dtype, dtype);
    EXPECT_EQ(header->model, "LogiRec++");
  }
}

/// The lossy-but-idempotent contract: reading a compact snapshot and
/// re-writing at the same dtype reproduces the file byte for byte (f32
/// narrowing and int8 quantization are both stable on already-compact
/// values), so a restored model serves its own precision exactly.
TEST_F(SnapshotCompactTest, CompactRewriteIsByteIdentical) {
  auto model = Train("LogiRec++");
  const TrainConfig config = FastConfig();
  for (SnapshotDtype dtype : {SnapshotDtype::kF32, SnapshotDtype::kInt8}) {
    const std::string tag = SnapshotDtypeName(dtype);
    const std::string first = PathFor(tag + "_first");
    ASSERT_TRUE(
        ModelSnapshot::Write(*model, HeaderFor(config), first, dtype).ok());
    auto restored = ModelSnapshot::Read(first, baselines::MakeModel);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    const std::string second = PathFor(tag + "_second");
    ASSERT_TRUE(
        ModelSnapshot::Write(**restored, HeaderFor(config), second, dtype)
            .ok());
    EXPECT_EQ(Slurp(first), Slurp(second)) << tag;
  }
}

TEST_F(SnapshotCompactTest, CompactFilesHitCompressionTargets) {
  auto model = Train("LogiRec++");
  const TrainConfig config = FastConfig();
  for (SnapshotDtype dtype :
       {SnapshotDtype::kF64, SnapshotDtype::kF32, SnapshotDtype::kInt8}) {
    ASSERT_TRUE(ModelSnapshot::Write(*model, HeaderFor(config),
                                     PathFor(SnapshotDtypeName(dtype)), dtype)
                    .ok());
  }
  const auto size = [&](const char* tag) {
    return static_cast<double>(std::filesystem::file_size(PathFor(tag)));
  };
  // Matrix payloads dominate even at dim 8; headers/vectors stay f64.
  EXPECT_LT(size("f32"), 0.6 * size("f64"));
  EXPECT_LT(size("int8"), 0.3 * size("f64"));
}

/// A restored compact model scores deterministically equal to a second
/// restore of the same file — compact decode has no hidden state.
TEST_F(SnapshotCompactTest, CompactRestoreIsDeterministic) {
  auto model = Train("HGCF");
  const TrainConfig config = FastConfig();
  const std::string path = PathFor("int8");
  ASSERT_TRUE(ModelSnapshot::Write(*model, HeaderFor(config), path,
                                   SnapshotDtype::kInt8)
                  .ok());
  auto a = ModelSnapshot::Read(path, baselines::MakeModel);
  auto b = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<double> sa, sb;
  for (int u = 0; u < dataset_.num_users; u += 7) {
    (*a)->ScoreItems(u, &sa);
    (*b)->ScoreItems(u, &sb);
    EXPECT_EQ(sa, sb) << "user " << u;
  }
}

/// Non-finite payloads are rejected even when the CRC is valid: patch a
/// NaN (then an Inf) into the first matrix payload and re-stamp the
/// record checksum, so only the finiteness check can catch it.
TEST_F(SnapshotCompactTest, NonFinitePayloadIsRejectedDespiteValidCrc) {
  auto model = Train("BPRMF");
  const TrainConfig config = FastConfig();
  const std::string path = PathFor("f64");
  ASSERT_TRUE(
      ModelSnapshot::Write(*model, HeaderFor(config), path).ok());
  const std::vector<unsigned char> clean = Slurp(path);
  const size_t record = FirstRecordOffset(clean);
  const int32_t rows = static_cast<int32_t>(U32At(clean, record));
  const int32_t cols = static_cast<int32_t>(U32At(clean, record + 4));
  ASSERT_GT(rows, 0);
  ASSERT_GT(cols, 0);
  const size_t crc_at = record + 8;
  const size_t payload = record + 12;
  const size_t payload_bytes = static_cast<size_t>(rows) * cols * 8;
  ASSERT_LE(payload + payload_bytes, clean.size());

  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    std::vector<unsigned char> bytes = clean;
    std::memcpy(bytes.data() + payload, &bad, 8);
    PutU32At(&bytes, crc_at, Crc32(bytes.data() + payload, payload_bytes));
    Dump(path, bytes);
    auto restored = ModelSnapshot::Read(path, baselines::MakeModel);
    ASSERT_FALSE(restored.ok());
    EXPECT_NE(restored.status().ToString().find("non-finite"),
              std::string::npos)
        << restored.status().ToString();
  }

  // Control: the unmodified bytes still load (the offsets above really
  // pointed at the payload, not at something the CRC would catch).
  Dump(path, clean);
  EXPECT_TRUE(ModelSnapshot::Read(path, baselines::MakeModel).ok());
}

/// A flipped byte in a compact (v2) payload still fails the per-tensor
/// checksum — the v2 records carry the same CRC armor as v1.
TEST_F(SnapshotCompactTest, FlippedCompactPayloadByteFailsChecksum) {
  auto model = Train("BPRMF");
  const TrainConfig config = FastConfig();
  const std::string path = PathFor("f32");
  ASSERT_TRUE(ModelSnapshot::Write(*model, HeaderFor(config), path,
                                   SnapshotDtype::kF32)
                  .ok());
  std::vector<unsigned char> bytes = Slurp(path);
  // v2 matrix record: dtype(4) rows(4) cols(4) crc(4) payload.
  const size_t payload = FirstRecordOffset(bytes) + 16;
  ASSERT_LT(payload, bytes.size());
  bytes[payload] ^= 0x40;
  Dump(path, bytes);
  auto restored = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("checksum"), std::string::npos)
      << restored.status().ToString();
}

/// Int8 snapshots reject a non-finite *scale* the same way (codes are
/// integers and cannot be non-finite; the f32 scales can).
TEST_F(SnapshotCompactTest, NonFiniteInt8ScaleIsRejected) {
  auto model = Train("BPRMF");
  const TrainConfig config = FastConfig();
  const std::string path = PathFor("int8");
  ASSERT_TRUE(ModelSnapshot::Write(*model, HeaderFor(config), path,
                                   SnapshotDtype::kInt8)
                  .ok());
  std::vector<unsigned char> bytes = Slurp(path);
  const size_t record = FirstRecordOffset(bytes);
  // v2 matrix record: dtype(4) rows(4) cols(4) crc(4) then int8 payload =
  // f32 scales[rows] followed by codes[rows * cols].
  const int32_t rows = static_cast<int32_t>(U32At(bytes, record + 4));
  const int32_t cols = static_cast<int32_t>(U32At(bytes, record + 8));
  ASSERT_GT(rows, 0);
  const size_t crc_at = record + 12;
  const size_t payload = record + 16;
  const size_t payload_bytes =
      static_cast<size_t>(rows) * 4 + static_cast<size_t>(rows) * cols;
  ASSERT_LE(payload + payload_bytes, bytes.size());
  const float bad = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(bytes.data() + payload, &bad, 4);
  PutU32At(&bytes, crc_at, Crc32(bytes.data() + payload, payload_bytes));
  Dump(path, bytes);
  auto restored = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("non-finite"),
            std::string::npos)
      << restored.status().ToString();
}

}  // namespace
}  // namespace logirec::core
