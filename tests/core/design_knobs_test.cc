// The design-choice ablation knobs must train successfully and actually
// change the computation (distinct scores from the default).

#include <gtest/gtest.h>

#include "core/logirec_model.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "hyper/poincare.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::Split split;
  Fixture() {
    data::SyntheticConfig config;
    config.num_users = 90;
    config.num_items = 110;
    config.seed = 31;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

LogiRecConfig FastConfig() {
  LogiRecConfig config;
  config.dim = 16;
  config.layers = 2;
  config.epochs = 25;
  return config;
}

struct KnobParam {
  const char* label;
  void (*apply)(LogiRecConfig*);
};

class DesignKnobTest : public ::testing::TestWithParam<KnobParam> {};

TEST_P(DesignKnobTest, TrainsAndDiffersFromDefault) {
  Fixture fx;
  LogiRecModel base(FastConfig());
  ASSERT_TRUE(base.Fit(fx.dataset, fx.split).ok());

  LogiRecConfig variant_config = FastConfig();
  GetParam().apply(&variant_config);
  LogiRecModel variant(variant_config);
  ASSERT_TRUE(variant.Fit(fx.dataset, fx.split).ok());

  eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
  EXPECT_GT(evaluator.Evaluate(variant).Get("Recall@20"), 3.0)
      << GetParam().label;

  std::vector<double> base_scores, variant_scores;
  base.ScoreItems(0, &base_scores);
  variant.ScoreItems(0, &variant_scores);
  EXPECT_NE(base_scores, variant_scores)
      << GetParam().label << " had no effect on the computation";
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, DesignKnobTest,
    ::testing::Values(
        KnobParam{"symmetric_norm",
                  [](LogiRecConfig* c) { c->symmetric_gcn_norm = true; }},
        KnobParam{"truncated_backprop",
                  [](LogiRecConfig* c) { c->detach_gcn_backward = true; }},
        KnobParam{"eq17_exp_map",
                  [](LogiRecConfig* c) { c->use_eq17_exp_map = true; }}),
    [](const ::testing::TestParamInfo<KnobParam>& info) {
      return info.param.label;
    });

TEST(Eq17StepTest, StaysInBallAndDescends) {
  Rng rng(5);
  math::Vec x{0.1, 0.2};
  const math::Vec target{0.6, -0.2};
  const double before = hyper::PoincareDistance(x, target);
  for (int step = 0; step < 200; ++step) {
    math::Vec g(2, 0.0);
    hyper::PoincareDistanceGrad(x, target, 1.0, math::Span(g),
                                math::Span());
    hyper::RsgdStepPoincareEq17(math::Span(x), g, 0.1);
    ASSERT_LT(math::Norm(x), 1.0);
  }
  EXPECT_LT(hyper::PoincareDistance(x, target), 0.5 * before);
}

}  // namespace
}  // namespace logirec::core
