#include "core/logic_engine.h"

#include <gtest/gtest.h>

#include "core/embedding.h"
#include "core/logic_losses.h"
#include "data/synthetic.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

using math::Matrix;

/// Synthetic dataset small enough for exhaustive bitwise comparison but
/// with every relation family populated (intersections included).
struct Fixture {
  data::Dataset dataset;
  data::LogicalRelations relations;
  Matrix items, tags;

  explicit Fixture(uint64_t seed = 5) {
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 90;
    config.seed = seed;
    dataset = data::GenerateSynthetic(config);
    relations = dataset.ExtractRelations(/*overlap_tolerance=*/0,
                                         /*intersection_support=*/2);
    // The generator's taxonomy rarely yields intersection pairs at this
    // scale; append synthetic ones (random distinct tag pairs) so the
    // fourth kernel is exercised. Oracle and engine read the same list.
    const int num_tags = dataset.taxonomy.num_tags();
    Rng pair_rng(seed + 2);
    for (int i = 0; i < 40; ++i) {
      const int a = pair_rng.UniformInt(num_tags);
      const int b = pair_rng.UniformInt(num_tags);
      if (a == b) continue;
      relations.intersections.push_back({a, b, /*support=*/2});
    }
    const int d = 8;
    items = Matrix(dataset.num_items, d);
    tags = Matrix(dataset.taxonomy.num_tags(), d);
    Rng rng(seed + 1);
    InitPoincareRows(&items, &rng, 0.05);
    InitHyperplaneCenters(&tags, dataset.taxonomy, &rng);
  }
};

/// The pre-engine per-relation loop, verbatim: the bit-level oracle.
double LegacyLoop(const data::LogicalRelations& relations,
                  const Matrix& items, const Matrix& tags, double lambda,
                  bool use_intersection, Matrix* gv, Matrix* gt) {
  double loss = 0.0;
  for (const auto& [item, tag] : relations.memberships) {
    loss += MembershipLossAndGrad(items.Row(item), tags.Row(tag), lambda,
                                  gv->Row(item), gt->Row(tag));
  }
  for (const data::HierarchyPair& h : relations.hierarchy) {
    loss += HierarchyLossAndGrad(tags.Row(h.parent), tags.Row(h.child),
                                 lambda, gt->Row(h.parent), gt->Row(h.child));
  }
  for (const data::ExclusionPair& e : relations.exclusions) {
    loss += ExclusionLossAndGrad(tags.Row(e.a), tags.Row(e.b), lambda,
                                 gt->Row(e.a), gt->Row(e.b));
  }
  if (use_intersection) {
    for (const data::IntersectionPair& p : relations.intersections) {
      loss += IntersectionLossAndGrad(tags.Row(p.a), tags.Row(p.b), lambda,
                                      gt->Row(p.a), gt->Row(p.b));
    }
  }
  return loss;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a.At(r, c), b.At(r, c)) << "row " << r << " col " << c;
    }
  }
}

struct EngineResult {
  double loss = 0.0;
  Matrix gv, gt;
};

EngineResult RunEngine(const Fixture& fx, const LogicEngine::Options& opts,
                       ParallelMode mode, int threads, int epoch = 0,
                       int shard = 0) {
  LogicEngine engine(fx.relations, opts);
  EngineResult out;
  out.gv = Matrix(fx.items.rows(), fx.items.cols());
  out.gt = Matrix(fx.tags.rows(), fx.tags.cols());
  out.loss = engine.LossesAndGrads(fx.items, fx.tags, /*lambda=*/2.0, mode,
                                   threads, epoch, shard, &out.gv, &out.gt);
  return out;
}

TEST(LogicEngineTest, FixtureExercisesEveryFamily) {
  Fixture fx;
  EXPECT_GT(fx.relations.memberships.size(), 0u);
  EXPECT_GT(fx.relations.hierarchy.size(), 0u);
  EXPECT_GT(fx.relations.exclusions.size(), 0u);
  EXPECT_GT(fx.relations.intersections.size(), 0u);
}

TEST(LogicEngineTest, SequentialIsBitIdenticalToLegacyLoop) {
  Fixture fx;
  LogicEngine::Options opts;
  opts.use_intersection = true;

  Matrix gv_legacy(fx.items.rows(), fx.items.cols());
  Matrix gt_legacy(fx.tags.rows(), fx.tags.cols());
  const double legacy =
      LegacyLoop(fx.relations, fx.items, fx.tags, 2.0,
                 /*use_intersection=*/true, &gv_legacy, &gt_legacy);

  const EngineResult seq =
      RunEngine(fx, opts, ParallelMode::kSequential, /*threads=*/1);
  EXPECT_EQ(legacy, seq.loss);
  ExpectBitIdentical(gv_legacy, seq.gv);
  ExpectBitIdentical(gt_legacy, seq.gt);
}

TEST(LogicEngineTest, DeterministicFullPassMatchesSequentialBitwise) {
  Fixture fx;
  LogicEngine::Options opts;
  opts.use_intersection = true;
  const EngineResult seq =
      RunEngine(fx, opts, ParallelMode::kSequential, /*threads=*/1);
  for (int threads : {1, 2, 8}) {
    const EngineResult det =
        RunEngine(fx, opts, ParallelMode::kDeterministic, threads);
    EXPECT_EQ(seq.loss, det.loss) << "threads=" << threads;
    ExpectBitIdentical(seq.gv, det.gv);
    ExpectBitIdentical(seq.gt, det.gt);
  }
}

TEST(LogicEngineTest, FamilySwitchesMatchLegacySubsets) {
  Fixture fx;
  // The published model: no intersection family.
  LogicEngine::Options opts;
  opts.use_intersection = false;
  Matrix gv_legacy(fx.items.rows(), fx.items.cols());
  Matrix gt_legacy(fx.tags.rows(), fx.tags.cols());
  const double legacy =
      LegacyLoop(fx.relations, fx.items, fx.tags, 2.0,
                 /*use_intersection=*/false, &gv_legacy, &gt_legacy);
  const EngineResult det =
      RunEngine(fx, opts, ParallelMode::kDeterministic, /*threads=*/4);
  EXPECT_EQ(legacy, det.loss);
  ExpectBitIdentical(gv_legacy, det.gv);
  ExpectBitIdentical(gt_legacy, det.gt);
}

TEST(LogicEngineTest, TagCacheRefreshesAfterMarkTagsDirty) {
  Fixture fx;
  LogicEngine::Options opts;
  opts.use_intersection = true;
  LogicEngine engine(fx.relations, opts);

  Matrix gv(fx.items.rows(), fx.items.cols());
  Matrix gt(fx.tags.rows(), fx.tags.cols());
  engine.LossesAndGrads(fx.items, fx.tags, 2.0, ParallelMode::kDeterministic,
                        2, 0, 0, &gv, &gt);

  // Move the tag centers (as a tag RSGD step would) and invalidate.
  Fixture moved = fx;
  for (int t = 0; t < moved.tags.rows(); ++t) {
    for (int k = 0; k < moved.tags.cols(); ++k) {
      moved.tags.At(t, k) *= 0.9;
    }
  }
  engine.MarkTagsDirty();
  Matrix gv2(fx.items.rows(), fx.items.cols());
  Matrix gt2(fx.tags.rows(), fx.tags.cols());
  const double stale = engine.LossesAndGrads(
      moved.items, moved.tags, 2.0, ParallelMode::kDeterministic, 2, 0, 0,
      &gv2, &gt2);

  // A fresh engine sees the moved centers with a cold cache: identical.
  const EngineResult fresh =
      RunEngine(moved, opts, ParallelMode::kDeterministic, 2);
  EXPECT_EQ(fresh.loss, stale);
  ExpectBitIdentical(fresh.gv, gv2);
  ExpectBitIdentical(fresh.gt, gt2);
}

TEST(LogicEngineTest, BatchAtLeastFamilySizeIsTheFullPass) {
  Fixture fx;
  LogicEngine::Options full;
  full.use_intersection = true;
  LogicEngine::Options batched = full;
  batched.relation_batch = 1 << 20;  // larger than every family

  const EngineResult a =
      RunEngine(fx, full, ParallelMode::kDeterministic, 2);
  const EngineResult b =
      RunEngine(fx, batched, ParallelMode::kDeterministic, 2);
  EXPECT_EQ(a.loss, b.loss);
  ExpectBitIdentical(a.gv, b.gv);
  ExpectBitIdentical(a.gt, b.gt);
}

TEST(LogicEngineTest, SampledBatchIsThreadAndModeInvariant) {
  Fixture fx;
  LogicEngine::Options opts;
  opts.use_intersection = true;
  opts.relation_batch = 16;

  const EngineResult seq =
      RunEngine(fx, opts, ParallelMode::kSequential, 1, /*epoch=*/3,
                /*shard=*/2);
  for (int threads : {1, 2, 8}) {
    const EngineResult det = RunEngine(
        fx, opts, ParallelMode::kDeterministic, threads, /*epoch=*/3,
        /*shard=*/2);
    EXPECT_EQ(seq.loss, det.loss) << "threads=" << threads;
    ExpectBitIdentical(seq.gv, det.gv);
    ExpectBitIdentical(seq.gt, det.gt);
  }
}

TEST(LogicEngineTest, SampledBatchesDifferAcrossEpochsAndShards) {
  Fixture fx;
  LogicEngine::Options opts;
  opts.use_intersection = true;
  opts.relation_batch = 16;
  const EngineResult e0 =
      RunEngine(fx, opts, ParallelMode::kDeterministic, 2, 0, 0);
  const EngineResult e1 =
      RunEngine(fx, opts, ParallelMode::kDeterministic, 2, 1, 0);
  const EngineResult s1 =
      RunEngine(fx, opts, ParallelMode::kDeterministic, 2, 0, 1);
  EXPECT_NE(e0.loss, e1.loss);
  EXPECT_NE(e0.loss, s1.loss);
}

TEST(LogicEngineTest, SampledLossIsUnbiasedScaleOfFullPass) {
  Fixture fx;
  LogicEngine::Options full;
  full.use_intersection = true;
  const EngineResult exact =
      RunEngine(fx, full, ParallelMode::kDeterministic, 2);

  // Mean of the rescaled sampled losses over many draws approaches the
  // full-pass loss (law of large numbers; generous tolerance).
  LogicEngine::Options sampled = full;
  sampled.relation_batch = 32;
  LogicEngine engine(fx.relations, sampled);
  Matrix gv(fx.items.rows(), fx.items.cols());
  Matrix gt(fx.tags.rows(), fx.tags.cols());
  double mean = 0.0;
  const int draws = 400;
  for (int e = 0; e < draws; ++e) {
    mean += engine.LossesAndGrads(fx.items, fx.tags, 2.0,
                                  ParallelMode::kDeterministic, 2, e, 0,
                                  &gv, &gt);
  }
  mean /= draws;
  EXPECT_NEAR(mean, exact.loss, 0.15 * exact.loss);
}

TEST(LogicEngineTest, EmptyRelationsReturnZero) {
  data::LogicalRelations empty;
  LogicEngine::Options opts;
  LogicEngine engine(empty, opts);
  Matrix items(4, 8), tags(3, 8), gv(4, 8), gt(3, 8);
  EXPECT_EQ(engine.total_relations(), 0);
  EXPECT_EQ(engine.LossesAndGrads(items, tags, 2.0,
                                  ParallelMode::kDeterministic, 4, 0, 0, &gv,
                                  &gt),
            0.0);
}

TEST(LogicEngineTest, RelationsPerCallAccountsForBatching) {
  Fixture fx;
  LogicEngine::Options opts;
  opts.use_intersection = true;
  LogicEngine full(fx.relations, opts);
  EXPECT_EQ(full.total_relations(), fx.relations.TotalCount());
  EXPECT_EQ(full.relations_per_call(), full.total_relations());

  opts.relation_batch = 4;
  LogicEngine batched(fx.relations, opts);
  long expected = 0;
  for (size_t n : {fx.relations.memberships.size(),
                   fx.relations.hierarchy.size(),
                   fx.relations.exclusions.size(),
                   fx.relations.intersections.size()}) {
    expected += std::min<long>(4, static_cast<long>(n));
  }
  EXPECT_EQ(batched.relations_per_call(), expected);
}

}  // namespace
}  // namespace logirec::core
