#include "core/logic_losses.h"

#include <gtest/gtest.h>

#include "hyper/hyperplane.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

using hyper::Ball;
using hyper::BallFromCenter;
using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

Vec CenterWithNorm(double n, int d) {
  Vec c(d, 0.0);
  c[0] = n;
  return c;
}

TEST(MembershipLossTest, ZeroWhenInsideBall) {
  const Vec c = CenterWithNorm(0.5, 2);   // ball center (1.25, 0), r 0.75
  const Ball ball = BallFromCenter(c);
  Vec inside = ball.center;
  inside[0] -= ball.radius * 0.5;
  EXPECT_DOUBLE_EQ(MembershipLoss(inside, c), 0.0);
  Vec gi(2, 0.0), gc(2, 0.0);
  EXPECT_DOUBLE_EQ(
      MembershipLossAndGrad(inside, c, 1.0, math::Span(gi), math::Span(gc)),
      0.0);
  for (double v : gi) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : gc) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MembershipLossTest, PositiveWhenOutsideBall) {
  const Vec c = CenterWithNorm(0.5, 2);
  const Vec far{-0.9, 0.0};  // opposite side of the ball
  EXPECT_GT(MembershipLoss(far, c), 0.0);
}

TEST(MembershipLossTest, GradientMatchesFiniteDifference) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Vec c(3);
    for (double& x : c) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(c), rng.Uniform(0.3, 0.7) / math::Norm(c));
    Vec item(3);
    for (double& x : item) x = rng.Gaussian(0.0, 0.5);
    if (MembershipLoss(item, c) <= 1e-3) {
      --trial;  // re-draw until the hinge is active
      continue;
    }
    Vec gi(3, 0.0), gc(3, 0.0);
    MembershipLossAndGrad(item, c, 1.0, math::Span(gi), math::Span(gc));
    ExpectGradientsClose(
        gi, NumericalGradient(
                [&](const std::vector<double>& p) {
                  return MembershipLoss(p, c);
                },
                item),
        1e-4);
    ExpectGradientsClose(
        gc, NumericalGradient(
                [&](const std::vector<double>& p) {
                  return MembershipLoss(item, p);
                },
                c),
        1e-4);
  }
}

TEST(MembershipLossTest, GradientPullsItemTowardBall) {
  const Vec c = CenterWithNorm(0.6, 2);
  const Ball ball = BallFromCenter(c);
  Vec item{-0.8, 0.0};
  Vec gi(2, 0.0);
  MembershipLossAndGrad(item, c, 1.0, math::Span(gi), math::Span());
  // A gradient step must reduce the distance to the ball center.
  const double before = math::Distance(item, ball.center);
  for (int i = 0; i < 2; ++i) item[i] -= 0.05 * gi[i];
  EXPECT_LT(math::Distance(item, ball.center), before);
}

TEST(HierarchyLossTest, ZeroWhenChildInsideParent) {
  // A coarse parent (small ||c||, big radius) containing a fine child on
  // the same ray.
  const Vec parent = CenterWithNorm(0.3, 2);
  const Vec child = CenterWithNorm(0.35, 2);
  EXPECT_DOUBLE_EQ(HierarchyLoss(parent, child), 0.0);
}

TEST(HierarchyLossTest, PositiveWhenChildEscapesParent) {
  const Vec parent = CenterWithNorm(0.6, 2);
  Vec child{0.0, 0.65};  // orthogonal direction — disjoint balls
  EXPECT_GT(HierarchyLoss(parent, child), 0.0);
}

TEST(HierarchyLossTest, GradientMatchesFiniteDifference) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Vec p(3), c(3);
    for (double& x : p) x = rng.Gaussian(0.0, 1.0);
    for (double& x : c) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(p), rng.Uniform(0.4, 0.7) / math::Norm(p));
    math::ScaleInPlace(math::Span(c), rng.Uniform(0.4, 0.7) / math::Norm(c));
    if (HierarchyLoss(p, c) <= 1e-3) {
      --trial;
      continue;
    }
    Vec gp(3, 0.0), gc(3, 0.0);
    HierarchyLossAndGrad(p, c, 1.0, math::Span(gp), math::Span(gc));
    ExpectGradientsClose(
        gp, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return HierarchyLoss(x, c);
                },
                p),
        1e-4);
    ExpectGradientsClose(
        gc, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return HierarchyLoss(p, x);
                },
                c),
        1e-4);
  }
}

TEST(ExclusionLossTest, ZeroWhenBallsDisjoint) {
  const Vec a{0.8, 0.0};
  const Vec b{-0.8, 0.0};
  EXPECT_DOUBLE_EQ(ExclusionLoss(a, b), 0.0);
}

TEST(ExclusionLossTest, PositiveWhenBallsOverlap) {
  // Nearly colinear centers with small norms -> huge overlapping balls.
  const Vec a{0.3, 0.0};
  const Vec b{0.32, 0.01};
  EXPECT_GT(ExclusionLoss(a, b), 0.0);
}

TEST(ExclusionLossTest, SymmetricInArguments) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Vec a(3), b(3);
    for (double& x : a) x = rng.Gaussian(0.0, 0.3);
    for (double& x : b) x = rng.Gaussian(0.0, 0.3);
    math::ScaleInPlace(math::Span(a), 0.5 / math::Norm(a));
    math::ScaleInPlace(math::Span(b), 0.5 / math::Norm(b));
    EXPECT_NEAR(ExclusionLoss(a, b), ExclusionLoss(b, a), 1e-12);
  }
}

TEST(ExclusionLossTest, GradientMatchesFiniteDifference) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a(3), b(3);
    for (double& x : a) x = rng.Gaussian(0.0, 1.0);
    for (double& x : b) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(a), rng.Uniform(0.3, 0.5) / math::Norm(a));
    math::ScaleInPlace(math::Span(b), rng.Uniform(0.3, 0.5) / math::Norm(b));
    if (ExclusionLoss(a, b) <= 1e-3) {
      --trial;
      continue;
    }
    Vec ga(3, 0.0), gb(3, 0.0);
    ExclusionLossAndGrad(a, b, 1.0, math::Span(ga), math::Span(gb));
    ExpectGradientsClose(
        ga, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return ExclusionLoss(x, b);
                },
                a),
        1e-4);
    ExpectGradientsClose(
        gb, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return ExclusionLoss(a, x);
                },
                b),
        1e-4);
  }
}

TEST(ExclusionLossTest, GradientStepsSeparateOverlappingTags) {
  Vec a{0.4, 0.0};
  Vec b{0.42, 0.05};
  const double before = ExclusionLoss(a, b);
  ASSERT_GT(before, 0.0);
  for (int step = 0; step < 200; ++step) {
    Vec ga(2, 0.0), gb(2, 0.0);
    if (ExclusionLossAndGrad(a, b, 1.0, math::Span(ga), math::Span(gb)) <=
        0.0) {
      break;
    }
    for (int i = 0; i < 2; ++i) {
      a[i] -= 0.02 * ga[i];
      b[i] -= 0.02 * gb[i];
    }
    hyper::ClampHyperplaneCenter(math::Span(a));
    hyper::ClampHyperplaneCenter(math::Span(b));
  }
  EXPECT_LT(ExclusionLoss(a, b), before);
}

TEST(LogicLossesTest, ScaleParameterScalesGradients) {
  const Vec c = CenterWithNorm(0.5, 2);
  const Vec item{-0.9, 0.1};
  Vec g1(2, 0.0), g2(2, 0.0);
  MembershipLossAndGrad(item, c, 3.0, math::Span(g1), math::Span());
  MembershipLossAndGrad(item, c, 1.0, math::Span(g2), math::Span());
  for (int i = 0; i < 2; ++i) EXPECT_NEAR(g1[i], 3.0 * g2[i], 1e-12);
}

TEST(IntersectionLossTest, GradientMatchesFiniteDifferenceBothArguments) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a(3), b(3);
    for (double& x : a) x = rng.Gaussian(0.0, 1.0);
    for (double& x : b) x = rng.Gaussian(0.0, 1.0);
    // Large norms -> small distant balls -> the disjointness hinge fires.
    math::ScaleInPlace(math::Span(a), rng.Uniform(0.6, 0.9) / math::Norm(a));
    math::ScaleInPlace(math::Span(b), rng.Uniform(0.6, 0.9) / math::Norm(b));
    if (IntersectionLoss(a, b) <= 1e-3) {
      --trial;
      continue;
    }
    Vec ga(3, 0.0), gb(3, 0.0);
    IntersectionLossAndGrad(a, b, 1.0, math::Span(ga), math::Span(gb));
    ExpectGradientsClose(
        ga, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return IntersectionLoss(x, b);
                },
                a),
        1e-4);
    ExpectGradientsClose(
        gb, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return IntersectionLoss(a, x);
                },
                b),
        1e-4);
  }
}

// ---- hinge-boundary behaviour, all four losses ------------------------
//
// Each case provides an endpoint pair with the hinge strictly active and
// one with it strictly inactive, plus a path x(t) crossing the kink so
// continuity can be checked at the boundary itself.

struct LossCase {
  const char* name;
  // (x, y, scale, gx, gy) -> loss, accumulating into gx/gy.
  double (*loss_grad)(math::ConstSpan, math::ConstSpan, double, math::Span,
                      math::Span);
  double (*loss)(math::ConstSpan, math::ConstSpan);
  Vec active_x, active_y;
  Vec inactive_x, inactive_y;
};

std::vector<LossCase> AllLossCases() {
  std::vector<LossCase> cases;
  // Membership: item far outside the ball / well inside it.
  cases.push_back({"membership", &MembershipLossAndGrad, &MembershipLoss,
                   Vec{-0.9, 0.0}, CenterWithNorm(0.5, 2),
                   Vec{1.25, 0.0}, CenterWithNorm(0.5, 2)});
  // Hierarchy: child escaped the parent / nested on the same ray.
  cases.push_back({"hierarchy", &HierarchyLossAndGrad, &HierarchyLoss,
                   CenterWithNorm(0.6, 2), Vec{0.0, 0.65},
                   CenterWithNorm(0.3, 2), CenterWithNorm(0.35, 2)});
  // Exclusion: overlapping giant balls / opposite-side disjoint balls.
  cases.push_back({"exclusion", &ExclusionLossAndGrad, &ExclusionLoss,
                   Vec{0.3, 0.0}, Vec{0.32, 0.01},
                   Vec{0.8, 0.0}, Vec{-0.8, 0.0}});
  // Intersection: exactly the mirrored configurations.
  cases.push_back({"intersection", &IntersectionLossAndGrad,
                   &IntersectionLoss, Vec{0.8, 0.0}, Vec{-0.8, 0.0},
                   Vec{0.3, 0.0}, Vec{0.32, 0.01}});
  return cases;
}

TEST(LogicLossesTest, InactiveHingeLeavesGradientsUntouched) {
  for (const LossCase& c : AllLossCases()) {
    SCOPED_TRACE(c.name);
    ASSERT_EQ(c.loss(c.inactive_x, c.inactive_y), 0.0);
    // Accumulation contract: an inactive relation must not write at all,
    // not even an explicit zero.
    Vec gx{123.0, -7.0}, gy{42.0, 0.25};
    EXPECT_EQ(c.loss_grad(c.inactive_x, c.inactive_y, 2.0, math::Span(gx),
                          math::Span(gy)),
              0.0);
    EXPECT_EQ(gx[0], 123.0);
    EXPECT_EQ(gx[1], -7.0);
    EXPECT_EQ(gy[0], 42.0);
    EXPECT_EQ(gy[1], 0.25);
  }
}

TEST(LogicLossesTest, ScaleScalesBothEndpointGradientsLinearly) {
  for (const LossCase& c : AllLossCases()) {
    SCOPED_TRACE(c.name);
    ASSERT_GT(c.loss(c.active_x, c.active_y), 0.0);
    Vec gx1(2, 0.0), gy1(2, 0.0), gx2(2, 0.0), gy2(2, 0.0);
    const double l1 = c.loss_grad(c.active_x, c.active_y, 1.0,
                                  math::Span(gx1), math::Span(gy1));
    const double l2 = c.loss_grad(c.active_x, c.active_y, 2.5,
                                  math::Span(gx2), math::Span(gy2));
    // The returned loss is unscaled; only the gradients carry `scale`.
    EXPECT_EQ(l1, l2);
    for (int i = 0; i < 2; ++i) {
      EXPECT_NEAR(gx2[i], 2.5 * gx1[i], 1e-9 * std::max(1.0, std::abs(gx2[i])));
      EXPECT_NEAR(gy2[i], 2.5 * gy1[i], 1e-9 * std::max(1.0, std::abs(gy2[i])));
    }
  }
}

TEST(LogicLossesTest, LossIsContinuousAcrossHingeKink) {
  for (const LossCase& c : AllLossCases()) {
    SCOPED_TRACE(c.name);
    // x(t) interpolates from the inactive to the active configuration;
    // somewhere in between the hinge switches on.
    auto loss_at = [&](double t) {
      Vec x(2), y(2);
      for (int i = 0; i < 2; ++i) {
        x[i] = (1.0 - t) * c.inactive_x[i] + t * c.active_x[i];
        y[i] = (1.0 - t) * c.inactive_y[i] + t * c.active_y[i];
      }
      return c.loss(x, y);
    };
    ASSERT_EQ(loss_at(0.0), 0.0);
    ASSERT_GT(loss_at(1.0), 0.0);
    double lo = 0.0, hi = 1.0;  // bisect to the kink
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (loss_at(mid) > 0.0 ? hi : lo) = mid;
    }
    // Just past the kink the hinge has barely opened: the loss approaches
    // 0 continuously instead of jumping.
    EXPECT_LT(loss_at(hi + 1e-7), 1e-4);
    EXPECT_EQ(loss_at(lo - 1e-7 < 0.0 ? 0.0 : lo - 1e-7), 0.0);
  }
}

}  // namespace
}  // namespace logirec::core
