#include "core/logic_losses.h"

#include <gtest/gtest.h>

#include "hyper/hyperplane.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

using hyper::Ball;
using hyper::BallFromCenter;
using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

Vec CenterWithNorm(double n, int d) {
  Vec c(d, 0.0);
  c[0] = n;
  return c;
}

TEST(MembershipLossTest, ZeroWhenInsideBall) {
  const Vec c = CenterWithNorm(0.5, 2);   // ball center (1.25, 0), r 0.75
  const Ball ball = BallFromCenter(c);
  Vec inside = ball.center;
  inside[0] -= ball.radius * 0.5;
  EXPECT_DOUBLE_EQ(MembershipLoss(inside, c), 0.0);
  Vec gi(2, 0.0), gc(2, 0.0);
  EXPECT_DOUBLE_EQ(
      MembershipLossAndGrad(inside, c, 1.0, math::Span(gi), math::Span(gc)),
      0.0);
  for (double v : gi) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : gc) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MembershipLossTest, PositiveWhenOutsideBall) {
  const Vec c = CenterWithNorm(0.5, 2);
  const Vec far{-0.9, 0.0};  // opposite side of the ball
  EXPECT_GT(MembershipLoss(far, c), 0.0);
}

TEST(MembershipLossTest, GradientMatchesFiniteDifference) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Vec c(3);
    for (double& x : c) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(c), rng.Uniform(0.3, 0.7) / math::Norm(c));
    Vec item(3);
    for (double& x : item) x = rng.Gaussian(0.0, 0.5);
    if (MembershipLoss(item, c) <= 1e-3) {
      --trial;  // re-draw until the hinge is active
      continue;
    }
    Vec gi(3, 0.0), gc(3, 0.0);
    MembershipLossAndGrad(item, c, 1.0, math::Span(gi), math::Span(gc));
    ExpectGradientsClose(
        gi, NumericalGradient(
                [&](const std::vector<double>& p) {
                  return MembershipLoss(p, c);
                },
                item),
        1e-4);
    ExpectGradientsClose(
        gc, NumericalGradient(
                [&](const std::vector<double>& p) {
                  return MembershipLoss(item, p);
                },
                c),
        1e-4);
  }
}

TEST(MembershipLossTest, GradientPullsItemTowardBall) {
  const Vec c = CenterWithNorm(0.6, 2);
  const Ball ball = BallFromCenter(c);
  Vec item{-0.8, 0.0};
  Vec gi(2, 0.0);
  MembershipLossAndGrad(item, c, 1.0, math::Span(gi), math::Span());
  // A gradient step must reduce the distance to the ball center.
  const double before = math::Distance(item, ball.center);
  for (int i = 0; i < 2; ++i) item[i] -= 0.05 * gi[i];
  EXPECT_LT(math::Distance(item, ball.center), before);
}

TEST(HierarchyLossTest, ZeroWhenChildInsideParent) {
  // A coarse parent (small ||c||, big radius) containing a fine child on
  // the same ray.
  const Vec parent = CenterWithNorm(0.3, 2);
  const Vec child = CenterWithNorm(0.35, 2);
  EXPECT_DOUBLE_EQ(HierarchyLoss(parent, child), 0.0);
}

TEST(HierarchyLossTest, PositiveWhenChildEscapesParent) {
  const Vec parent = CenterWithNorm(0.6, 2);
  Vec child{0.0, 0.65};  // orthogonal direction — disjoint balls
  EXPECT_GT(HierarchyLoss(parent, child), 0.0);
}

TEST(HierarchyLossTest, GradientMatchesFiniteDifference) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Vec p(3), c(3);
    for (double& x : p) x = rng.Gaussian(0.0, 1.0);
    for (double& x : c) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(p), rng.Uniform(0.4, 0.7) / math::Norm(p));
    math::ScaleInPlace(math::Span(c), rng.Uniform(0.4, 0.7) / math::Norm(c));
    if (HierarchyLoss(p, c) <= 1e-3) {
      --trial;
      continue;
    }
    Vec gp(3, 0.0), gc(3, 0.0);
    HierarchyLossAndGrad(p, c, 1.0, math::Span(gp), math::Span(gc));
    ExpectGradientsClose(
        gp, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return HierarchyLoss(x, c);
                },
                p),
        1e-4);
    ExpectGradientsClose(
        gc, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return HierarchyLoss(p, x);
                },
                c),
        1e-4);
  }
}

TEST(ExclusionLossTest, ZeroWhenBallsDisjoint) {
  const Vec a{0.8, 0.0};
  const Vec b{-0.8, 0.0};
  EXPECT_DOUBLE_EQ(ExclusionLoss(a, b), 0.0);
}

TEST(ExclusionLossTest, PositiveWhenBallsOverlap) {
  // Nearly colinear centers with small norms -> huge overlapping balls.
  const Vec a{0.3, 0.0};
  const Vec b{0.32, 0.01};
  EXPECT_GT(ExclusionLoss(a, b), 0.0);
}

TEST(ExclusionLossTest, SymmetricInArguments) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Vec a(3), b(3);
    for (double& x : a) x = rng.Gaussian(0.0, 0.3);
    for (double& x : b) x = rng.Gaussian(0.0, 0.3);
    math::ScaleInPlace(math::Span(a), 0.5 / math::Norm(a));
    math::ScaleInPlace(math::Span(b), 0.5 / math::Norm(b));
    EXPECT_NEAR(ExclusionLoss(a, b), ExclusionLoss(b, a), 1e-12);
  }
}

TEST(ExclusionLossTest, GradientMatchesFiniteDifference) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a(3), b(3);
    for (double& x : a) x = rng.Gaussian(0.0, 1.0);
    for (double& x : b) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(a), rng.Uniform(0.3, 0.5) / math::Norm(a));
    math::ScaleInPlace(math::Span(b), rng.Uniform(0.3, 0.5) / math::Norm(b));
    if (ExclusionLoss(a, b) <= 1e-3) {
      --trial;
      continue;
    }
    Vec ga(3, 0.0), gb(3, 0.0);
    ExclusionLossAndGrad(a, b, 1.0, math::Span(ga), math::Span(gb));
    ExpectGradientsClose(
        ga, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return ExclusionLoss(x, b);
                },
                a),
        1e-4);
    ExpectGradientsClose(
        gb, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return ExclusionLoss(a, x);
                },
                b),
        1e-4);
  }
}

TEST(ExclusionLossTest, GradientStepsSeparateOverlappingTags) {
  Vec a{0.4, 0.0};
  Vec b{0.42, 0.05};
  const double before = ExclusionLoss(a, b);
  ASSERT_GT(before, 0.0);
  for (int step = 0; step < 200; ++step) {
    Vec ga(2, 0.0), gb(2, 0.0);
    if (ExclusionLossAndGrad(a, b, 1.0, math::Span(ga), math::Span(gb)) <=
        0.0) {
      break;
    }
    for (int i = 0; i < 2; ++i) {
      a[i] -= 0.02 * ga[i];
      b[i] -= 0.02 * gb[i];
    }
    hyper::ClampHyperplaneCenter(math::Span(a));
    hyper::ClampHyperplaneCenter(math::Span(b));
  }
  EXPECT_LT(ExclusionLoss(a, b), before);
}

TEST(LogicLossesTest, ScaleParameterScalesGradients) {
  const Vec c = CenterWithNorm(0.5, 2);
  const Vec item{-0.9, 0.1};
  Vec g1(2, 0.0), g2(2, 0.0);
  MembershipLossAndGrad(item, c, 3.0, math::Span(g1), math::Span());
  MembershipLossAndGrad(item, c, 1.0, math::Span(g2), math::Span());
  for (int i = 0; i < 2; ++i) EXPECT_NEAR(g1[i], 3.0 * g2[i], 1e-12);
}

}  // namespace
}  // namespace logirec::core
