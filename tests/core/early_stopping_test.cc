#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/bprmf.h"
#include "baselines/hgcf.h"
#include "core/logirec_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace logirec::core {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::Split split;
  Fixture() {
    data::SyntheticConfig config;
    config.num_users = 100;
    config.num_items = 120;
    config.seed = 13;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

TEST(EarlyStoppingTest, StillProducesCompetitiveScores) {
  Fixture fx;
  LogiRecConfig config;
  config.dim = 16;
  config.epochs = 60;
  config.early_stopping_patience = 3;
  config.eval_every = 5;
  LogiRecModel model(config);
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
  EXPECT_GT(evaluator.Evaluate(model).Get("Recall@20"), 3.0);
}

TEST(EarlyStoppingTest, DeterministicInSeed) {
  Fixture fx;
  LogiRecConfig config;
  config.dim = 16;
  config.epochs = 40;
  config.early_stopping_patience = 2;
  config.eval_every = 5;
  LogiRecModel a(config), b(config);
  ASSERT_TRUE(a.Fit(fx.dataset, fx.split).ok());
  ASSERT_TRUE(b.Fit(fx.dataset, fx.split).ok());
  std::vector<double> sa, sb;
  a.ScoreItems(7, &sa);
  b.ScoreItems(7, &sb);
  EXPECT_EQ(sa, sb);
}

TEST(EarlyStoppingTest, RestoredModelNotWorseThanOverfitTail) {
  // With aggressive patience the returned model must match the best
  // validation checkpoint — compare against a run with patience disabled
  // but identical epochs: validation Recall of the early-stopped model
  // is at least that of the final epoch of the unstopped run.
  Fixture fx;
  LogiRecConfig with_es;
  with_es.dim = 16;
  with_es.epochs = 60;
  with_es.early_stopping_patience = 2;
  with_es.eval_every = 5;
  LogiRecModel stopped(with_es);
  ASSERT_TRUE(stopped.Fit(fx.dataset, fx.split).ok());

  LogiRecConfig no_es = with_es;
  no_es.early_stopping_patience = 0;
  LogiRecModel plain(no_es);
  ASSERT_TRUE(plain.Fit(fx.dataset, fx.split).ok());

  eval::Evaluator validator(&fx.split, fx.dataset.num_items, {10});
  const double es_val =
      validator.Evaluate(stopped, /*use_validation=*/true).Get("Recall@10");
  const double plain_val =
      validator.Evaluate(plain, /*use_validation=*/true).Get("Recall@10");
  EXPECT_GE(es_val + 1e-9, plain_val * 0.8)
      << "early stopping should not catastrophically underperform";
}

// --- every model honors patience now that training runs through
// core::Trainer; cover two baselines from different families ------------

struct RecordingObserver final : TrainObserver {
  std::vector<EpochStats> epochs;
  TrainSummary summary;
  bool ended = false;
  void OnEpochEnd(const EpochStats& stats) override {
    epochs.push_back(stats);
  }
  void OnTrainEnd(const TrainSummary& s) override {
    summary = s;
    ended = true;
  }
};

template <typename Model>
void ExpectStopsEarlyAndRestoresBest(const Fixture& fx,
                                     TrainConfig config) {
  config.early_stopping_patience = 1;
  config.eval_every = 1;
  RecordingObserver obs;
  config.observer = &obs;
  Model model(config);
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());

  ASSERT_TRUE(obs.ended);
  EXPECT_TRUE(obs.summary.stopped_early);
  EXPECT_LT(obs.summary.epochs_run, config.epochs);

  // The summary's best metric is the max over all probes...
  double max_probed = -1.0;
  for (const EpochStats& e : obs.epochs) {
    max_probed = std::max(max_probed, e.val_metric);
  }
  EXPECT_DOUBLE_EQ(obs.summary.best_val_metric, max_probed);

  // ...and the restored parameters reproduce it exactly when
  // re-evaluated, proving the best checkpoint came back.
  eval::Evaluator validator(&fx.split, fx.dataset.num_items,
                            std::vector<int>{10});
  const double restored_val =
      validator.Evaluate(model, /*use_validation=*/true).Get("Recall@10");
  EXPECT_DOUBLE_EQ(restored_val, obs.summary.best_val_metric);
}

TEST(EarlyStoppingTest, BprmfStopsEarlyAndRestoresBest) {
  Fixture fx;
  TrainConfig config;
  config.dim = 16;
  config.epochs = 300;
  ExpectStopsEarlyAndRestoresBest<baselines::Bprmf>(fx, config);
}

TEST(EarlyStoppingTest, HgcfStopsEarlyAndRestoresBest) {
  Fixture fx;
  TrainConfig config;
  config.dim = 16;
  config.epochs = 120;
  ExpectStopsEarlyAndRestoresBest<baselines::Hgcf>(fx, config);
}

}  // namespace
}  // namespace logirec::core
