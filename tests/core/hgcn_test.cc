#include "core/hgcn.h"

#include <gtest/gtest.h>

#include "core/embedding.h"
#include "graph/bipartite_graph.h"
#include "hyper/lorentz.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

using math::Matrix;
using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

graph::BipartiteGraph TinyGraph() {
  // 3 users, 4 items.
  return graph::BipartiteGraph(3, 4, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(HyperbolicGcnTest, OutputStaysOnHyperboloid) {
  Rng rng(1);
  auto graph = TinyGraph();
  HyperbolicGcn gcn(&graph, 3);
  Matrix users(3, 4), items(4, 4);
  InitLorentzRows(&users, &rng, 0.3);
  InitLorentzRows(&items, &rng, 0.3);
  Matrix fu, fv;
  gcn.Forward(users, items, &fu, &fv);
  for (int u = 0; u < 3; ++u) {
    EXPECT_NEAR(hyper::LorentzDot(fu.Row(u), fu.Row(u)), -1.0, 1e-8);
  }
  for (int v = 0; v < 4; ++v) {
    EXPECT_NEAR(hyper::LorentzDot(fv.Row(v), fv.Row(v)), -1.0, 1e-8);
  }
}

TEST(HyperbolicGcnTest, ZeroLayersIsIdentity) {
  Rng rng(2);
  auto graph = TinyGraph();
  HyperbolicGcn gcn(&graph, 0);
  Matrix users(3, 4), items(4, 4);
  InitLorentzRows(&users, &rng, 0.3);
  InitLorentzRows(&items, &rng, 0.3);
  Matrix fu, fv;
  gcn.Forward(users, items, &fu, &fv);
  EXPECT_EQ(fu.data(), users.data());
  EXPECT_EQ(fv.data(), items.data());
}

TEST(HyperbolicGcnTest, NeighborsPullRepresentationsTogether) {
  // After propagation, a user should be closer to its interacted item
  // than an isolated pair would be, because they mix tangent components.
  Rng rng(3);
  graph::BipartiteGraph graph(2, 2, {{0}, {1}});
  HyperbolicGcn gcn(&graph, 2);
  Matrix users(2, 5), items(2, 5);
  InitLorentzRows(&users, &rng, 0.8);
  InitLorentzRows(&items, &rng, 0.8);
  const double before = hyper::LorentzDistance(users.Row(0), items.Row(0));
  Matrix fu, fv;
  gcn.Forward(users, items, &fu, &fv);
  const double after = hyper::LorentzDistance(fu.Row(0), fv.Row(0));
  // Mixing with a partner contracts the *relative* gap even though norms
  // grow; verify via the normalized (angle-like) gap.
  EXPECT_LT(after / (1.0 + hyper::LorentzDistance(
                               fu.Row(0), hyper::LorentzOrigin(5))),
            before / (1.0 + hyper::LorentzDistance(
                                users.Row(0), hyper::LorentzOrigin(5))));
}

TEST(HyperbolicGcnTest, BackwardMatchesFiniteDifference) {
  // Full-block gradcheck: scalar loss = sum of Lorentz distances between
  // matched output users/items; differentiate w.r.t. the spatial input
  // coordinates of one user and one item.
  Rng rng(4);
  auto graph = TinyGraph();
  const int dim = 3;  // ambient 4
  Matrix users(3, dim + 1), items(4, dim + 1);
  InitLorentzRows(&users, &rng, 0.4);
  InitLorentzRows(&items, &rng, 0.4);

  auto loss_for = [&](const Matrix& u_in, const Matrix& v_in) {
    HyperbolicGcn gcn(&graph, 2);
    Matrix fu, fv;
    gcn.Forward(u_in, v_in, &fu, &fv);
    double loss = 0.0;
    for (int u = 0; u < 3; ++u) {
      loss += hyper::LorentzDistance(fu.Row(u), fv.Row(u));
    }
    return loss;
  };

  // Analytic gradients.
  HyperbolicGcn gcn(&graph, 2);
  Matrix fu, fv;
  gcn.Forward(users, items, &fu, &fv);
  Matrix gfu(3, dim + 1), gfv(4, dim + 1);
  for (int u = 0; u < 3; ++u) {
    hyper::LorentzDistanceGrad(fu.Row(u), fv.Row(u), 1.0, gfu.Row(u),
                               gfv.Row(u));
  }
  Matrix gu(3, dim + 1), gv(4, dim + 1);
  gcn.Backward(gfu, gfv, &gu, &gv);

  // Numeric: perturb the spatial coordinates of user 1 and item 2,
  // re-projecting onto the hyperboloid (the analytic gradient is ambient,
  // so compare only the tangential part: project both to the tangent
  // space at the point).
  for (const auto& [is_user, row] :
       std::vector<std::pair<bool, int>>{{true, 1}, {false, 2}}) {
    Matrix& base = is_user ? users : items;
    const Vec x0(base.Row(row).begin(), base.Row(row).end());
    // Numeric gradient over spatial components with x_0 recomputed —
    // this measures the gradient along the manifold chart
    // (x_1..x_d) -> (sqrt(1+|x|^2), x_1..x_d).
    const auto f = [&](const std::vector<double>& spatial) {
      Matrix u_in = users, v_in = items;
      auto target = is_user ? u_in.Row(row) : v_in.Row(row);
      for (int k = 0; k < dim; ++k) target[k + 1] = spatial[k];
      hyper::ProjectToHyperboloid(target);
      return loss_for(u_in, v_in);
    };
    std::vector<double> spatial(dim);
    for (int k = 0; k < dim; ++k) spatial[k] = x0[k + 1];
    const std::vector<double> numeric = NumericalGradient(f, spatial, 1e-6);

    // Chart rule: dL/dx_k(chart) = g_k + g_0 * x_k / x_0.
    const auto& g = is_user ? gu : gv;
    std::vector<double> analytic(dim);
    for (int k = 0; k < dim; ++k) {
      analytic[k] = g.At(row, k + 1) + g.At(row, 0) * x0[k + 1] / x0[0];
    }
    ExpectGradientsClose(analytic, numeric, 1e-4);
  }
}

}  // namespace
}  // namespace logirec::core
