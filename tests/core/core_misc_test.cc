#include <set>

#include <gtest/gtest.h>

#include "core/embedding.h"
#include "core/negative_sampler.h"
#include "core/train_util.h"
#include "data/synthetic.h"
#include "hyper/hyperplane.h"
#include "hyper/lorentz.h"
#include "hyper/poincare.h"

namespace logirec::core {
namespace {

TEST(EmbeddingInitTest, PoincareRowsInsideBall) {
  Rng rng(1);
  math::Matrix m(50, 8);
  InitPoincareRows(&m, &rng, 0.5);
  for (int r = 0; r < 50; ++r) {
    EXPECT_LT(math::Norm(m.Row(r)), 1.0);
  }
}

TEST(EmbeddingInitTest, LorentzRowsOnHyperboloid) {
  Rng rng(2);
  math::Matrix m(50, 9);
  InitLorentzRows(&m, &rng, 0.5);
  for (int r = 0; r < 50; ++r) {
    EXPECT_NEAR(hyper::LorentzDot(m.Row(r), m.Row(r)), -1.0, 1e-9);
  }
}

TEST(EmbeddingInitTest, HyperplaneCentersFollowLevels) {
  // Deeper tags must start farther from the origin (finer granularity).
  data::Taxonomy taxonomy;
  const int a = taxonomy.AddTag("A");
  const int a1 = taxonomy.AddTag("A1", a);
  const int a11 = taxonomy.AddTag("A11", a1);
  Rng rng(3);
  math::Matrix m(3, 6);
  InitHyperplaneCenters(&m, taxonomy, &rng);
  EXPECT_LT(math::Norm(m.Row(a)), math::Norm(m.Row(a1)));
  EXPECT_LT(math::Norm(m.Row(a1)), math::Norm(m.Row(a11)));
  for (int t = 0; t < 3; ++t) {
    const double n = math::Norm(m.Row(t));
    EXPECT_GE(n, hyper::kMinCenterNorm - 1e-9);
    EXPECT_LE(n, hyper::kMaxCenterNorm + 1e-9);
  }
}

TEST(NegativeSamplerTest, NeverReturnsTrainPositive) {
  const std::vector<std::vector<int>> train = {{0, 1, 2}, {5}};
  NegativeSampler sampler(10, train);
  Rng rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    const int neg = sampler.Sample(0, &rng);
    EXPECT_FALSE(sampler.IsPositive(0, neg));
    EXPECT_GE(neg, 0);
    EXPECT_LT(neg, 10);
  }
}

TEST(NegativeSamplerTest, CoversNegativeItems) {
  const std::vector<std::vector<int>> train = {{0}};
  NegativeSampler sampler(5, train);
  Rng rng(5);
  std::set<int> seen;
  for (int trial = 0; trial < 200; ++trial) seen.insert(sampler.Sample(0, &rng));
  EXPECT_EQ(seen.size(), 4u);  // items 1..4
}

TEST(TrainUtilTest, ShuffledPairsContainAllInteractions) {
  const std::vector<std::vector<int>> train = {{3, 4}, {}, {7}};
  Rng rng(6);
  auto pairs = ShuffledTrainPairs(train, &rng);
  ASSERT_EQ(pairs.size(), 3u);
  std::set<std::pair<int, int>> expected = {{0, 3}, {0, 4}, {2, 7}};
  std::set<std::pair<int, int>> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got, expected);
}

TEST(TrainUtilTest, BatchRangesCoverTotal) {
  auto ranges = BatchRanges(10, 4);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], std::make_pair(0, 4));
  EXPECT_EQ(ranges[1], std::make_pair(4, 8));
  EXPECT_EQ(ranges[2], std::make_pair(8, 10));
  EXPECT_TRUE(BatchRanges(0, 4).empty());
  EXPECT_EQ(BatchRanges(3, 100).size(), 1u);
}

}  // namespace
}  // namespace logirec::core
