// Failure-injection tests: every model must survive degenerate inputs —
// cold users (no training interactions), cold items (never interacted),
// and datasets with no tags at all.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace logirec::core {
namespace {

data::Dataset BaseDataset() {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.seed = 51;
  return data::GenerateSynthetic(config);
}

TrainConfig FastConfig() {
  TrainConfig config;
  config.dim = 8;
  config.layers = 2;
  config.epochs = 8;
  return config;
}

class ColdStartTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ColdStartTest, SurvivesColdUsersAndItems) {
  data::Dataset dataset = BaseDataset();
  // Inject 5 cold users and 5 cold items (ids exist, no interactions).
  dataset.num_users += 5;
  dataset.num_items += 5;
  for (int i = 0; i < 5; ++i) dataset.item_tags.push_back({});
  ASSERT_TRUE(dataset.Validate().ok());
  const data::Split split = data::TemporalSplit(dataset);
  for (int u = dataset.num_users - 5; u < dataset.num_users; ++u) {
    ASSERT_TRUE(split.train[u].empty());
  }

  auto model = baselines::MakeModel(GetParam(), FastConfig());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(dataset, split).ok()) << GetParam();

  // Cold users must still be scorable (finite, full-length output).
  std::vector<double> scores;
  (*model)->ScoreItems(dataset.num_users - 1, &scores);
  ASSERT_EQ(static_cast<int>(scores.size()), dataset.num_items);
  for (double s : scores) {
    ASSERT_TRUE(std::isfinite(s)) << GetParam();
  }
}

TEST_P(ColdStartTest, SurvivesTaglessDataset) {
  data::Dataset dataset = BaseDataset();
  for (auto& tags : dataset.item_tags) tags.clear();
  dataset.taxonomy = data::Taxonomy();  // zero tags
  ASSERT_TRUE(dataset.Validate().ok());
  const data::Split split = data::TemporalSplit(dataset);

  auto model = baselines::MakeModel(GetParam(), FastConfig());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(dataset, split).ok()) << GetParam();
  std::vector<double> scores;
  (*model)->ScoreItems(0, &scores);
  for (double s : scores) ASSERT_TRUE(std::isfinite(s)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ColdStartTest,
    ::testing::ValuesIn(baselines::AllModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DegenerateInputTest, SingleInteractionDataset) {
  data::Dataset dataset;
  dataset.name = "tiny";
  dataset.num_users = 2;
  dataset.num_items = 3;
  dataset.item_tags = {{}, {}, {}};
  dataset.interactions = {{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {1, 0, 0}};
  const data::Split split = data::TemporalSplit(dataset);
  LogiRecConfig config;
  config.dim = 4;
  config.epochs = 3;
  LogiRecModel model(config);
  EXPECT_TRUE(model.Fit(dataset, split).ok());
}

TEST(DegenerateInputTest, EmptyDatasetRejected) {
  data::Dataset dataset;
  const data::Split split;
  LogiRecModel model(LogiRecConfig{});
  EXPECT_FALSE(model.Fit(dataset, split).ok());
}

}  // namespace
}  // namespace logirec::core
