#include "core/weighting.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/embedding.h"
#include "hyper/lorentz.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

/// Builds a small dataset with a 2-level taxonomy:
///   A (0) -> A1 (2), A2 (3);  B (1) -> B1 (4), B2 (5)
/// and items i owned by leaf tag (2 + i % 4).
data::Dataset MakeDataset() {
  data::Dataset ds;
  ds.name = "toy";
  ds.num_users = 3;
  ds.num_items = 8;
  const int a = ds.taxonomy.AddTag("A");
  const int b = ds.taxonomy.AddTag("B");
  ds.taxonomy.AddTag("A1", a);
  ds.taxonomy.AddTag("A2", a);
  ds.taxonomy.AddTag("B1", b);
  ds.taxonomy.AddTag("B2", b);
  ds.item_tags.resize(8);
  for (int i = 0; i < 8; ++i) {
    ds.item_tags[i] = {2 + (i % 4)};
  }
  // Interactions are irrelevant here (weighting reads train lists), but
  // keep the dataset valid.
  ds.interactions.push_back({0, 0, 0});
  return ds;
}

TEST(UserWeightingTest, ConsistentUserHasHigherCon) {
  const data::Dataset ds = MakeDataset();
  // user 0: items 0, 4 (both tag A1) — fully consistent.
  // user 1: items 0, 1 (tags A1, A2 — exclusive siblings).
  // user 2: items 0, 2 (tags A1, B1 — not siblings => not exclusive by the
  //         same-parent rule at level 2, but A vs B ... items carry leaf
  //         tags only, so the only exclusions involving them are sibling
  //         pairs).
  std::vector<std::vector<int>> train = {{0, 4}, {0, 1}, {0, 2}};
  const data::LogicalRelations rel = ds.ExtractRelations();
  UserWeighting w(ds, train, rel, ds.taxonomy.num_levels());

  EXPECT_GT(w.Con(0), w.Con(1));
  EXPECT_EQ(w.ExclusivePairCount(0), 0);
  EXPECT_GE(w.ExclusivePairCount(1), 1);
  EXPECT_LE(w.Con(0), 1.0);
  EXPECT_GT(w.Con(1), 0.0);
}

TEST(UserWeightingTest, LowerLevelExclusionsPenalizeMore) {
  // Same TF profile, one exclusive pair each — but at different levels.
  data::Dataset ds;
  ds.num_users = 2;
  ds.num_items = 4;
  const int a = ds.taxonomy.AddTag("A");   // level 1
  const int b = ds.taxonomy.AddTag("B");   // level 1 (exclusive with A)
  ds.taxonomy.AddTag("A1", a);             // level 2
  ds.taxonomy.AddTag("A2", a);             // level 2 (exclusive with A1)
  (void)b;
  ds.item_tags = {{0}, {1}, {2}, {3}};
  ds.interactions.push_back({0, 0, 0});
  const data::LogicalRelations rel = ds.ExtractRelations();
  // user 0 interacted with tags {A, B}: one level-1 exclusion.
  // user 1 interacted with tags {A1, A2}: one level-2 exclusion.
  std::vector<std::vector<int>> train = {{0, 1}, {2, 3}};
  UserWeighting w(ds, train, rel, ds.taxonomy.num_levels());
  // exp(eta - k) weights shallow (k small) exclusions more, so user 0 is
  // the LESS consistent one.
  EXPECT_LT(w.Con(0), w.Con(1));
}

TEST(UserWeightingTest, TfIsNormalizedFrequency) {
  const data::Dataset ds = MakeDataset();
  std::vector<std::vector<int>> train = {{0, 4}, {1}, {2}};
  const data::LogicalRelations rel = ds.ExtractRelations();
  UserWeighting w(ds, train, rel, 2);
  // user 0 interacted twice with tag 2 (A1): |T_u| = 2, count = 2.
  EXPECT_NEAR(w.Tf(0, 2), std::log(3.0) / std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(w.Tf(0, 4), 0.0);
}

TEST(UserWeightingTest, GranularityTracksDistanceToOrigin) {
  const data::Dataset ds = MakeDataset();
  std::vector<std::vector<int>> train = {{0}, {1}, {2}};
  UserWeighting w(ds, train, ds.ExtractRelations(), 2);

  math::Matrix users(3, 4);
  Rng rng(1);
  InitLorentzRows(&users, &rng, 0.01);
  // Push user 2 far from the origin.
  users.At(2, 1) = 3.0;
  hyper::ProjectToHyperboloid(users.Row(2));
  w.UpdateGranularity(users);
  EXPECT_GT(w.Gr(2), w.Gr(0));
  EXPECT_NEAR(w.Gr(2), 1.0, 1e-12);  // max-normalized

  // Alphas are sqrt(CON * GR), mean-normalized, capped, and damped toward
  // the uniform weight: alpha = 0.5 + 0.5 * min(raw / mean(raw), 3).
  double raw_sum = 0.0;
  std::vector<double> raw(3);
  for (int u = 0; u < 3; ++u) {
    raw[u] = std::sqrt(w.Con(u) * w.Gr(u));
    raw_sum += raw[u];
  }
  const double mean_raw = raw_sum / 3.0;
  for (int u = 0; u < 3; ++u) {
    EXPECT_GT(w.Alpha(u), 0.5);
    EXPECT_LE(w.Alpha(u), 2.0 + 1e-12);
    EXPECT_NEAR(w.Alpha(u),
                0.5 + 0.5 * std::min(raw[u] / mean_raw, 3.0), 1e-9);
  }
  // Ordering must follow the raw Eq. 14 weights.
  EXPECT_GT(w.Alpha(2), w.Alpha(0));
}

TEST(UserWeightingTest, AllUsersAtOriginKeepFiniteAlphas) {
  // Regression: when every user sits at the hyperboloid origin the max
  // granularity is 0; the normalizer must fall back to 1 instead of
  // producing 0/0 = NaN alphas.
  const data::Dataset ds = MakeDataset();
  std::vector<std::vector<int>> train = {{0}, {1}, {2}};
  UserWeighting w(ds, train, ds.ExtractRelations(), 2);
  math::Matrix users(3, 4);
  for (int u = 0; u < 3; ++u) users.At(u, 0) = 1.0;  // the Lorentz origin
  w.UpdateGranularity(users);
  for (int u = 0; u < 3; ++u) {
    EXPECT_TRUE(std::isfinite(w.Gr(u))) << "user " << u;
    EXPECT_TRUE(std::isfinite(w.Alpha(u))) << "user " << u;
    EXPECT_GT(w.Alpha(u), 0.0);
  }
}

TEST(UserWeightingTest, NonFiniteDistanceCannotPoisonAlphas) {
  // A row pushed off the hyperboloid (e.g. by a diverged step) yields a
  // NaN origin distance; it must be treated as 0 rather than leaking into
  // the shared max and every user's alpha.
  const data::Dataset ds = MakeDataset();
  std::vector<std::vector<int>> train = {{0}, {1}, {2}};
  UserWeighting w(ds, train, ds.ExtractRelations(), 2);
  math::Matrix users(3, 4);
  Rng rng(4);
  InitLorentzRows(&users, &rng, 0.05);
  users.At(1, 0) = 0.0;  // invalid: Lorentz inner product >= -1 -> NaN acosh
  w.UpdateGranularity(users);
  for (int u = 0; u < 3; ++u) {
    EXPECT_TRUE(std::isfinite(w.Gr(u))) << "user " << u;
    EXPECT_TRUE(std::isfinite(w.Alpha(u))) << "user " << u;
  }
}

TEST(UserWeightingTest, ConstructionAndRefreshAreThreadInvariant) {
  const data::Dataset ds = MakeDataset();
  std::vector<std::vector<int>> train = {{0, 4, 1}, {0, 1, 2, 3}, {2, 6}};
  const data::LogicalRelations rel = ds.ExtractRelations();
  math::Matrix users(3, 4);
  Rng rng(9);
  InitLorentzRows(&users, &rng, 0.3);

  UserWeighting base(ds, train, rel, ds.taxonomy.num_levels(), 1);
  base.UpdateGranularity(users, 1);
  for (int threads : {2, 8}) {
    UserWeighting w(ds, train, rel, ds.taxonomy.num_levels(), threads);
    w.UpdateGranularity(users, threads);
    for (int u = 0; u < 3; ++u) {
      EXPECT_EQ(base.Con(u), w.Con(u)) << "threads=" << threads;
      EXPECT_EQ(base.Gr(u), w.Gr(u)) << "threads=" << threads;
      EXPECT_EQ(base.Alpha(u), w.Alpha(u)) << "threads=" << threads;
      EXPECT_EQ(base.ExclusivePairCount(u), w.ExclusivePairCount(u));
      EXPECT_EQ(base.TagTypeCount(u), w.TagTypeCount(u));
    }
    for (int u = 0; u < 3; ++u) {
      for (int t = 0; t < ds.taxonomy.num_tags(); ++t) {
        EXPECT_EQ(base.Tf(u, t), w.Tf(u, t));
      }
    }
  }
}

TEST(UserWeightingTest, TagTypeCountsDistinctTags) {
  const data::Dataset ds = MakeDataset();
  std::vector<std::vector<int>> train = {{0, 4, 1}, {0}, {}};
  UserWeighting w(ds, train, ds.ExtractRelations(), 2);
  EXPECT_EQ(w.TagTypeCount(0), 2);  // tags A1 (twice) and A2
  EXPECT_EQ(w.TagTypeCount(1), 1);
  EXPECT_EQ(w.TagTypeCount(2), 0);
}

}  // namespace
}  // namespace logirec::core
