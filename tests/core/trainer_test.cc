#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "baselines/lightgcn.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace logirec::core {
namespace {

/// Minimal Trainable recording how the Trainer drives it.
struct ToyModel final : Trainable {
  int batches = 0;
  int tails = 0;
  std::vector<std::pair<int, int>> seen;

  double TrainOnBatch(const BatchContext& ctx) override {
    ++batches;
    EXPECT_LE(ctx.begin, ctx.end);
    for (int i = ctx.begin; i < ctx.end; ++i) seen.push_back(ctx.pairs[i]);
    return static_cast<double>(ctx.size());  // mean_loss becomes 1.0
  }
  double EpochTail(int /*epoch*/, Rng* /*rng*/) override {
    ++tails;
    return 0.0;
  }
};

struct RecordingObserver final : TrainObserver {
  std::vector<EpochStats> epochs;
  TrainSummary summary;
  bool ended = false;
  void OnEpochEnd(const EpochStats& stats) override {
    epochs.push_back(stats);
  }
  void OnTrainEnd(const TrainSummary& s) override {
    summary = s;
    ended = true;
  }
};

data::Split ToySplit() {
  data::Split split;
  split.train = {{0, 1}, {2}, {1, 2}};  // 3 users, 5 pairs
  split.validation.resize(3);
  split.test.resize(3);
  return split;
}

TEST(TrainerTest, DrivesEveryPairEveryEpochInBatches) {
  const data::Split split = ToySplit();
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 2;
  ToyModel model;
  Rng rng(7);
  Trainer trainer(config);
  const TrainSummary summary = trainer.Train(&model, split, 3, &rng);

  EXPECT_EQ(summary.epochs_run, 3);
  EXPECT_FALSE(summary.stopped_early);
  EXPECT_EQ(model.tails, 3);
  // 5 pairs / batch_size 2 -> 3 batches per epoch.
  EXPECT_EQ(model.batches, 9);
  ASSERT_EQ(model.seen.size(), 15u);
  // Each epoch covers the full interaction multiset, whatever the order.
  std::vector<std::pair<int, int>> expected = {
      {0, 0}, {0, 1}, {1, 2}, {2, 1}, {2, 2}};
  for (int e = 0; e < 3; ++e) {
    std::vector<std::pair<int, int>> epoch(model.seen.begin() + e * 5,
                                           model.seen.begin() + (e + 1) * 5);
    std::sort(epoch.begin(), epoch.end());
    EXPECT_EQ(epoch, expected) << "epoch " << e;
  }
}

TEST(TrainerTest, ObserverSeesPerEpochTelemetry) {
  const data::Split split = ToySplit();
  RecordingObserver obs;
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 64;
  config.observer = &obs;
  ToyModel model;
  Rng rng(7);
  Trainer trainer(config);
  trainer.Train(&model, split, 3, &rng);

  ASSERT_TRUE(obs.ended);
  ASSERT_EQ(obs.epochs.size(), 4u);
  for (int e = 0; e < 4; ++e) {
    EXPECT_EQ(obs.epochs[e].epoch, e);
    EXPECT_EQ(obs.epochs[e].samples, 5);
    EXPECT_DOUBLE_EQ(obs.epochs[e].mean_loss, 1.0);
    EXPECT_LT(obs.epochs[e].val_metric, 0.0);  // no probes without patience
  }
  EXPECT_EQ(obs.summary.epochs_run, 4);
  EXPECT_FALSE(obs.summary.stopped_early);
}

TEST(TrainerTest, ThreadCountDoesNotChangeResults) {
  // ParallelFor updates are per-row independent, so training must be
  // bit-identical across worker counts (the acceptance criterion for the
  // Trainer migration).
  data::SyntheticConfig dconfig;
  dconfig.num_users = 60;
  dconfig.num_items = 80;
  dconfig.seed = 13;
  const data::Dataset dataset = data::GenerateSynthetic(dconfig);
  const data::Split split = data::TemporalSplit(dataset);

  TrainConfig config;
  config.dim = 8;
  config.epochs = 5;
  config.seed = 7;

  TrainConfig single = config;
  single.num_threads = 1;
  baselines::LightGcn a(single);
  ASSERT_TRUE(a.Fit(dataset, split).ok());

  TrainConfig wide = config;
  wide.num_threads = 4;
  baselines::LightGcn b(wide);
  ASSERT_TRUE(b.Fit(dataset, split).ok());

  for (int u = 0; u < dataset.num_users; u += 7) {
    std::vector<double> sa, sb;
    a.ScoreItems(u, &sa);
    b.ScoreItems(u, &sb);
    EXPECT_EQ(sa, sb) << "user " << u;
  }
}

}  // namespace
}  // namespace logirec::core
