// Binary model snapshots: round-trip every zoo model bit-identically and
// degrade every corruption mode into a descriptive error, never a crash.

#include "core/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "core/logirec_model.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace logirec::core {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes, and a
    // shared directory lets concurrent cases clobber each other's files.
    dir_ = ::testing::TempDir() + "/logirec_snapshot_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 80;
    config.seed = 7;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TrainConfig FastConfig() const {
    TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 5;
    return config;
  }

  SnapshotHeader HeaderFor(const TrainConfig& config) const {
    SnapshotHeader header;
    header.dim = config.dim;
    header.layers = config.layers;
    header.num_users = dataset_.num_users;
    header.num_items = dataset_.num_items;
    return header;
  }

  /// Trains `name`, snapshots it, and returns the snapshot path.
  std::string WriteTrainedSnapshot(const std::string& name,
                                   Recommender** model_out = nullptr) {
    const TrainConfig config = FastConfig();
    auto model = baselines::MakeModel(name, config);
    EXPECT_TRUE(model.ok()) << name;
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok()) << name;
    const std::string path = dir_ + "/" + name + ".snap";
    EXPECT_TRUE(ModelSnapshot::Write(**model, HeaderFor(config), path).ok())
        << name;
    if (model_out != nullptr) {
      trained_ = std::move(*model);
      *model_out = trained_.get();
    }
    return path;
  }

  std::vector<unsigned char> Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
  }

  void Dump(const std::string& path,
            const std::vector<unsigned char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }

  std::string dir_;
  data::Dataset dataset_;
  data::Split split_;
  std::unique_ptr<Recommender> trained_;
};

TEST_F(SnapshotTest, RoundTripScoresBitIdenticallyForEveryModel) {
  for (const std::string& name : baselines::AllModelNames()) {
    Recommender* original = nullptr;
    const std::string path = WriteTrainedSnapshot(name, &original);

    SnapshotHeader header;
    auto restored = ModelSnapshot::Read(path, baselines::MakeModel, &header);
    ASSERT_TRUE(restored.ok()) << name << ": "
                               << restored.status().ToString();
    EXPECT_EQ(header.model, original->name());
    EXPECT_EQ(header.num_users, dataset_.num_users);
    EXPECT_EQ(header.num_items, dataset_.num_items);
    EXPECT_EQ((*restored)->name(), original->name());

    std::vector<double> want, got;
    math::Vec want_buf(dataset_.num_items), got_buf(dataset_.num_items);
    for (int u : {0, 13, 59}) {
      original->ScoreItems(u, &want);
      (*restored)->ScoreItems(u, &got);
      EXPECT_EQ(want, got) << name << " user " << u;
      // The ranking fast path must restore bit-identically as well.
      original->ScoreItemsInto(u, math::Span(want_buf),
                               eval::ScoreMode::kRanking);
      (*restored)->ScoreItemsInto(u, math::Span(got_buf),
                                  eval::ScoreMode::kRanking);
      EXPECT_EQ(want_buf, got_buf) << name << " user " << u << " (ranking)";
    }
  }
}

TEST_F(SnapshotTest, EuclideanLogiRecRestoresWithItsMetric) {
  // The "w/o Hyper" ablation travels through the flag word: the factory
  // builds a default (hyperbolic) LogiRec and ApplySnapshotFlags() must
  // switch it back before the tensors land.
  LogiRecConfig config;
  config.dim = 8;
  config.epochs = 5;
  config.use_hyperbolic = false;
  LogiRecModel model(config);
  ASSERT_TRUE(model.Fit(dataset_, split_).ok());
  const std::string path = dir_ + "/euclid.snap";
  TrainConfig base = config;
  ASSERT_TRUE(ModelSnapshot::Write(model, HeaderFor(base), path).ok());

  SnapshotHeader header;
  auto restored = ModelSnapshot::Read(path, baselines::MakeModel, &header);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_NE(header.flags, 0u);
  EXPECT_EQ((*restored)->item_space(),
            Recommender::ItemSpace::kEuclidean);
  std::vector<double> want, got;
  model.ScoreItems(5, &want);
  (*restored)->ScoreItems(5, &got);
  EXPECT_EQ(want, got);
}

TEST_F(SnapshotTest, PeekReportsHeaderWithoutConstructingAModel) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  auto header = ModelSnapshot::Peek(path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->model, "BPRMF");
  EXPECT_EQ(header->dim, 8);
  EXPECT_EQ(header->num_users, dataset_.num_users);
  EXPECT_EQ(header->num_items, dataset_.num_items);
}

TEST_F(SnapshotTest, WriteBeforeFitFails) {
  auto model = baselines::MakeModel("BPRMF", FastConfig());
  ASSERT_TRUE(model.ok());
  // Unfitted: the scoring-state tensors are all empty, which Write turns
  // into 0x0 records; restoring such a snapshot must not crash either.
  const std::string path = dir_ + "/unfitted.snap";
  const Status st =
      ModelSnapshot::Write(**model, HeaderFor(FastConfig()), path);
  if (st.ok()) {
    auto restored = ModelSnapshot::Read(path, baselines::MakeModel);
    // Either outcome is fine; it must simply not crash.
    (void)restored;
  }
}

TEST_F(SnapshotTest, MissingFileFails) {
  EXPECT_FALSE(ModelSnapshot::Peek(dir_ + "/absent.snap").ok());
  EXPECT_FALSE(
      ModelSnapshot::Read(dir_ + "/absent.snap", baselines::MakeModel).ok());
}

TEST_F(SnapshotTest, BadMagicFails) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  std::vector<unsigned char> bytes = Slurp(path);
  bytes[0] ^= 0xFF;
  Dump(path, bytes);
  const auto result = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST_F(SnapshotTest, UnsupportedVersionFails) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  std::vector<unsigned char> bytes = Slurp(path);
  bytes[4] = 0x7F;  // version lives right after the magic word
  Dump(path, bytes);
  const auto result = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, FlippedHeaderByteFailsTheHeaderChecksum) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  std::vector<unsigned char> bytes = Slurp(path);
  bytes[9] ^= 0x01;  // inside the flags word, covered by the header CRC
  Dump(path, bytes);
  const auto result = ModelSnapshot::Peek(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotTest, FlippedPayloadByteFailsTheTensorChecksum) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  std::vector<unsigned char> bytes = Slurp(path);
  bytes[bytes.size() - 5] ^= 0x01;  // deep inside the last tensor payload
  Dump(path, bytes);
  const auto result = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotTest, TruncatedTensorFails) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  std::vector<unsigned char> bytes = Slurp(path);
  bytes.resize(bytes.size() / 2);
  Dump(path, bytes);
  const auto result = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos);
}

TEST_F(SnapshotTest, TrailingGarbageFails) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  std::vector<unsigned char> bytes = Slurp(path);
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  Dump(path, bytes);
  const auto result = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST_F(SnapshotTest, EveryPrefixTruncationFailsCleanly) {
  // Exhaustive prefix fuzz: a snapshot cut at *any* byte boundary must
  // produce an error, never a crash or a false success.
  const std::string path = WriteTrainedSnapshot("NeuMF");
  const std::vector<unsigned char> bytes = Slurp(path);
  const std::string cut = dir_ + "/cut.snap";
  // Byte-exhaustive over the header region, then strided over payloads.
  const size_t dense = 64;
  for (size_t n = 0; n < bytes.size();
       n += (n < dense ? 1 : bytes.size() / 53 + 1)) {
    Dump(cut, std::vector<unsigned char>(bytes.begin(), bytes.begin() + n));
    EXPECT_FALSE(ModelSnapshot::Read(cut, baselines::MakeModel).ok())
        << "prefix of " << n << " bytes parsed as a valid snapshot";
  }
}

TEST_F(SnapshotTest, UnknownModelNameFails) {
  // A header naming a model the factory cannot build must surface the
  // factory's error instead of crashing.
  auto model = baselines::MakeModel("BPRMF", FastConfig());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(dataset_, split_).ok());
  const std::string path = dir_ + "/renamed.snap";
  ASSERT_TRUE(
      ModelSnapshot::Write(**model, HeaderFor(FastConfig()), path).ok());
  auto result = ModelSnapshot::Read(
      path,
      [](const std::string& name, const TrainConfig& config) {
        return baselines::MakeModel("NoSuch" + name, config);
      });
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace logirec::core
