#include "core/logirec_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "hyper/hyperplane.h"
#include "hyper/lorentz.h"
#include "hyper/poincare.h"

namespace logirec::core {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::Split split;

  Fixture() {
    data::SyntheticConfig config;
    config.name = "cd-mini";
    config.num_users = 120;
    config.num_items = 150;
    config.seed = 5;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

LogiRecConfig FastConfig() {
  LogiRecConfig config;
  config.dim = 16;
  config.layers = 2;
  config.epochs = 40;
  config.verbose = false;
  return config;
}

TEST(LogiRecModelTest, FitRejectsMismatchedSplit) {
  Fixture fx;
  LogiRecModel model(FastConfig());
  data::Split bad;
  bad.train.resize(3);
  EXPECT_FALSE(model.Fit(fx.dataset, bad).ok());
}

TEST(LogiRecModelTest, BeatsRandomScoring) {
  Fixture fx;
  LogiRecModel model(FastConfig());
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
  const auto result = evaluator.Evaluate(model);
  // Random top-10 recall on 150 items would be well under 7%.
  EXPECT_GT(result.Get("Recall@10"), 7.0);
}

TEST(LogiRecModelTest, ItemEmbeddingsStayInBallTagsInRange) {
  Fixture fx;
  LogiRecModel model(FastConfig());
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  for (int v = 0; v < model.item_poincare().rows(); ++v) {
    EXPECT_LT(math::Norm(model.item_poincare().Row(v)), 1.0);
  }
  for (int t = 0; t < model.tag_centers().rows(); ++t) {
    const double n = math::Norm(model.tag_centers().Row(t));
    EXPECT_GE(n, hyper::kMinCenterNorm - 1e-9);
    EXPECT_LE(n, hyper::kMaxCenterNorm + 1e-9);
  }
  for (int u = 0; u < model.final_user().rows(); ++u) {
    const auto row = model.final_user().Row(u);
    // Relative to x0^2: far-from-origin points lose absolute precision in
    // the +1 term of the constraint.
    const double tol = std::max(1e-6, 1e-9 * row[0] * row[0]);
    EXPECT_NEAR(hyper::LorentzDot(row, row), -1.0, tol);
  }
}

TEST(LogiRecModelTest, ScoresAreFiniteAndComplete) {
  Fixture fx;
  LogiRecModel model(FastConfig());
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  std::vector<double> scores;
  model.ScoreItems(0, &scores);
  ASSERT_EQ(static_cast<int>(scores.size()), fx.dataset.num_items);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(LogiRecModelTest, DeterministicInSeed) {
  Fixture fx;
  LogiRecModel a(FastConfig()), b(FastConfig());
  ASSERT_TRUE(a.Fit(fx.dataset, fx.split).ok());
  ASSERT_TRUE(b.Fit(fx.dataset, fx.split).ok());
  std::vector<double> sa, sb;
  a.ScoreItems(3, &sa);
  b.ScoreItems(3, &sb);
  EXPECT_EQ(sa, sb);
}

TEST(LogiRecModelTest, MiningExposesWeights) {
  Fixture fx;
  LogiRecConfig config = FastConfig();
  config.use_mining = true;
  LogiRecModel model(config);
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  ASSERT_NE(model.weighting(), nullptr);
  EXPECT_EQ(model.name(), "LogiRec++");
  for (int u = 0; u < fx.dataset.num_users; ++u) {
    // Damped, mean-normalized weights live in (0.5, 2.0].
    EXPECT_GT(model.weighting()->Alpha(u), 0.5);
    EXPECT_LE(model.weighting()->Alpha(u), 2.0 + 1e-12);
  }
}

TEST(LogiRecModelTest, NoMiningHasNoWeighting) {
  Fixture fx;
  LogiRecConfig config = FastConfig();
  config.use_mining = false;
  LogiRecModel model(config);
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  EXPECT_EQ(model.weighting(), nullptr);
  EXPECT_EQ(model.name(), "LogiRec");
}

TEST(LogiRecModelTest, LogicLossesDecreaseWithTraining) {
  Fixture fx;
  LogiRecConfig untrained_config = FastConfig();
  untrained_config.epochs = 0;
  LogiRecModel untrained(untrained_config);
  ASSERT_TRUE(untrained.Fit(fx.dataset, fx.split).ok());
  LogiRecModel trained(FastConfig());
  ASSERT_TRUE(trained.Fit(fx.dataset, fx.split).ok());
  const auto before = untrained.ReportLogicLosses(fx.dataset);
  const auto after = trained.ReportLogicLosses(fx.dataset);
  EXPECT_LT(after.mean_membership, before.mean_membership);
}

// Table III variants must all train and produce sane scores.
struct AblationParam {
  const char* label;
  void (*apply)(LogiRecConfig*);
};

class AblationTest : public ::testing::TestWithParam<AblationParam> {};

TEST_P(AblationTest, VariantTrainsAndScores) {
  Fixture fx;
  LogiRecConfig config = FastConfig();
  GetParam().apply(&config);
  LogiRecModel model(config);
  ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
  const auto result = evaluator.Evaluate(model);
  EXPECT_GT(result.Get("Recall@20"), 2.0) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    TableThreeVariants, AblationTest,
    ::testing::Values(
        AblationParam{"full", [](LogiRecConfig*) {}},
        AblationParam{"wo_mem",
                      [](LogiRecConfig* c) { c->use_membership = false; }},
        AblationParam{"wo_hie",
                      [](LogiRecConfig* c) { c->use_hierarchy = false; }},
        AblationParam{"wo_ex",
                      [](LogiRecConfig* c) { c->use_exclusion = false; }},
        AblationParam{"wo_hgcn",
                      [](LogiRecConfig* c) { c->use_hgcn = false; }},
        AblationParam{"wo_lrm",
                      [](LogiRecConfig* c) { c->use_mining = false; }},
        AblationParam{"wo_hyper",
                      [](LogiRecConfig* c) { c->use_hyperbolic = false; }}),
    [](const ::testing::TestParamInfo<AblationParam>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace logirec::core
