#include "core/persistence.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/logirec_model.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes, and a
    // shared directory lets concurrent cases clobber each other's files.
    dir_ = ::testing::TempDir() + "/logirec_persistence_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(PersistenceTest, MatrixRoundTripIsExact) {
  Rng rng(1);
  math::Matrix m(7, 5);
  m.FillGaussian(&rng, 1.0);
  ASSERT_TRUE(SaveMatrixCsv(m, dir_ + "/m.csv").ok());
  auto loaded = LoadMatrixCsv(dir_ + "/m.csv");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->rows(), 7);
  EXPECT_EQ(loaded->cols(), 5);
  // %.17g round-trips doubles exactly.
  EXPECT_EQ(loaded->data(), m.data());
}

TEST_F(PersistenceTest, LoadMissingMatrixFails) {
  EXPECT_FALSE(LoadMatrixCsv(dir_ + "/absent.csv").ok());
}

// Every malformed-CSV error names the file and the offending location,
// so a bad export is diagnosable from the message alone.
TEST_F(PersistenceTest, MalformedCsvErrorsDescribeTheProblem) {
  struct Case {
    const char* name;
    const char* content;
    const char* expect_in_message;
  };
  const Case cases[] = {
      {"bad_header.csv", "two,3\n1,2,3\n1,2,3\n", "bad matrix header"},
      {"negative_dims.csv", "-2,3\n", "negative matrix dimensions"},
      {"row_count.csv", "3,2\n1,2\n3,4\n", "expected 3 rows"},
      {"arity.csv", "2,3\n1,2,3\n4,5\n", "row 1 has 2 cells"},
      {"bad_cell.csv", "2,2\n1,2\n3,oops\n", "\"oops\" at row 1 col 1"},
  };
  for (const Case& c : cases) {
    const std::string path = dir_ + "/" + c.name;
    std::ofstream(path) << c.content;
    auto loaded = LoadMatrixCsv(path);
    ASSERT_FALSE(loaded.ok()) << c.name;
    const std::string message = loaded.status().message();
    EXPECT_NE(message.find(c.expect_in_message), std::string::npos)
        << c.name << ": " << message;
    EXPECT_NE(message.find(c.name), std::string::npos)
        << "error must name the file: " << message;
  }
}

TEST_F(PersistenceTest, ModelSaveLoadPreservesScores) {
  data::SyntheticConfig config;
  config.num_users = 80;
  config.num_items = 100;
  config.seed = 3;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  const data::Split split = data::TemporalSplit(dataset);

  LogiRecConfig model_config;
  model_config.dim = 8;
  model_config.epochs = 15;
  LogiRecModel model(model_config);
  ASSERT_TRUE(model.Fit(dataset, split).ok());
  ASSERT_TRUE(model.Save(dir_).ok());

  auto loaded = LogiRecModel::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), model.name());
  for (int u : {0, 17, 42}) {
    std::vector<double> original, restored;
    model.ScoreItems(u, &original);
    loaded->ScoreItems(u, &restored);
    EXPECT_EQ(original, restored) << "user " << u;
  }
}

TEST_F(PersistenceTest, SaveBeforeFitFails) {
  LogiRecModel model(LogiRecConfig{});
  const Status st = model.Save(dir_);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, LoadFromEmptyDirFails) {
  EXPECT_FALSE(LogiRecModel::Load(dir_).ok());
}

}  // namespace
}  // namespace logirec::core
