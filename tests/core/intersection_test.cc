// Tests for the intersection relation (the paper's future-work
// set-theoretic extension): extraction, loss/gradient, and end-to-end
// training with use_intersection enabled.

#include <gtest/gtest.h>

#include "core/logic_losses.h"
#include "core/logirec_model.h"
#include "hyper/hyperplane.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

TEST(IntersectionExtractionTest, RequiresSupportAndSkipsAncestors) {
  data::Taxonomy taxonomy;
  const int a = taxonomy.AddTag("A");
  const int a1 = taxonomy.AddTag("A1", a);
  const int b = taxonomy.AddTag("B");
  // A1 co-occurs with B on two items; A1 with its ancestor A on many.
  const std::vector<std::vector<int>> item_tags = {
      {a1, b}, {a1, b}, {a1, a}, {a1, a}, {a1, a}};
  const auto pairs = taxonomy.IntersectionPairs(item_tags, 2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, a1);
  EXPECT_EQ(pairs[0].b, b);
  EXPECT_EQ(pairs[0].support, 2);

  // Raising the support threshold removes the pair.
  EXPECT_TRUE(taxonomy.IntersectionPairs(item_tags, 3).empty());
}

TEST(IntersectionLossTest, ZeroWhenBallsOverlap) {
  // Near-colinear small-norm centers -> giant overlapping balls.
  const Vec a{0.3, 0.0};
  const Vec b{0.32, 0.01};
  EXPECT_DOUBLE_EQ(IntersectionLoss(a, b), 0.0);
}

TEST(IntersectionLossTest, PositiveWhenBallsDisjoint) {
  const Vec a{0.8, 0.0};
  const Vec b{-0.8, 0.0};
  EXPECT_GT(IntersectionLoss(a, b), 0.0);
}

TEST(IntersectionLossTest, MirrorsExclusionLoss) {
  // For any pair, exactly one of exclusion/intersection loss is active
  // (they share the boundary where both vanish).
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    Vec a(3), b(3);
    for (double& x : a) x = rng.Gaussian(0.0, 1.0);
    for (double& x : b) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(a), rng.Uniform(0.2, 0.9) / math::Norm(a));
    math::ScaleInPlace(math::Span(b), rng.Uniform(0.2, 0.9) / math::Norm(b));
    const double ex = ExclusionLoss(a, b);
    const double in = IntersectionLoss(a, b);
    EXPECT_TRUE(ex == 0.0 || in == 0.0);
  }
}

TEST(IntersectionLossTest, GradientMatchesFiniteDifference) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a(3), b(3);
    for (double& x : a) x = rng.Gaussian(0.0, 1.0);
    for (double& x : b) x = rng.Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(a), rng.Uniform(0.6, 0.9) / math::Norm(a));
    math::ScaleInPlace(math::Span(b), rng.Uniform(0.6, 0.9) / math::Norm(b));
    // Push them to opposite directions until the hinge is active.
    if (IntersectionLoss(a, b) <= 1e-3) {
      --trial;
      continue;
    }
    Vec ga(3, 0.0), gb(3, 0.0);
    IntersectionLossAndGrad(a, b, 1.0, math::Span(ga), math::Span(gb));
    ExpectGradientsClose(
        ga, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return IntersectionLoss(x, b);
                },
                a),
        1e-4);
    ExpectGradientsClose(
        gb, NumericalGradient(
                [&](const std::vector<double>& x) {
                  return IntersectionLoss(a, x);
                },
                b),
        1e-4);
  }
}

TEST(IntersectionLossTest, GradientStepsPullBallsTogether) {
  Vec a{0.85, 0.0};
  Vec b{-0.85, 0.0};
  const double before = IntersectionLoss(a, b);
  ASSERT_GT(before, 0.0);
  for (int step = 0; step < 50; ++step) {
    Vec ga(2, 0.0), gb(2, 0.0);
    if (IntersectionLossAndGrad(a, b, 1.0, math::Span(ga),
                                math::Span(gb)) <= 0.0) {
      break;
    }
    for (int i = 0; i < 2; ++i) {
      a[i] -= 0.05 * ga[i];
      b[i] -= 0.05 * gb[i];
    }
    hyper::ClampHyperplaneCenter(math::Span(a));
    hyper::ClampHyperplaneCenter(math::Span(b));
  }
  EXPECT_LT(IntersectionLoss(a, b), before);
}

TEST(IntersectionModelTest, TrainsWithIntersectionEnabled) {
  data::SyntheticConfig config;
  config.num_users = 100;
  config.num_items = 120;
  config.seed = 4;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  const data::Split split = data::TemporalSplit(dataset);

  LogiRecConfig model_config;
  model_config.dim = 16;
  model_config.epochs = 25;
  model_config.use_intersection = true;
  model_config.intersection_min_support = 2;
  LogiRecModel model(model_config);
  ASSERT_TRUE(model.Fit(dataset, split).ok());
  eval::Evaluator evaluator(&split, dataset.num_items);
  EXPECT_GT(evaluator.Evaluate(model).Get("Recall@20"), 3.0);
}

}  // namespace
}  // namespace logirec::core
