// Determinism contract of the sharded training pipeline (PR 3):
//  - ParallelMode::kDeterministic metrics are a pure function of the seed
//    and the shard size — bit-identical for every worker count;
//  - ParallelMode::kSequential remains a single deterministic stream;
//  - Rng::MixSeed gives stable, well-separated per-shard stream seeds.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "baselines/cml.h"
#include "baselines/hgcf.h"
#include "core/logirec_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "util/rng.h"

namespace logirec::core {
namespace {

TEST(MixSeedTest, PureFunctionOfInputs) {
  EXPECT_EQ(Rng::MixSeed(7, 3, 2), Rng::MixSeed(7, 3, 2));
  EXPECT_EQ(Rng::MixSeed(0, 0, 0), Rng::MixSeed(0, 0, 0));
}

TEST(MixSeedTest, StreamsAreWellSeparated) {
  // Every (seed, epoch, shard) triple in a small grid maps to a distinct
  // stream seed — no accidental shard collisions inside one run.
  std::set<uint64_t> seen;
  for (uint64_t seed : {0ull, 7ull, ~7ull}) {
    for (uint64_t epoch = 0; epoch < 8; ++epoch) {
      for (uint64_t shard = 0; shard < 16; ++shard) {
        seen.insert(Rng::MixSeed(seed, epoch, shard));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 8u * 16u);
}

TEST(MixSeedTest, ArgumentOrderMatters) {
  EXPECT_NE(Rng::MixSeed(7, 1, 2), Rng::MixSeed(7, 2, 1));
  EXPECT_NE(Rng::MixSeed(1, 7, 2), Rng::MixSeed(2, 7, 1));
}

struct Fixture {
  data::Dataset dataset;
  data::Split split;

  Fixture() {
    data::SyntheticConfig config;
    config.name = "cd-mini";
    config.num_users = 100;
    config.num_items = 120;
    config.seed = 11;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

/// Fits `Model` with the given mode/threads and returns sampled user
/// score vectors (exact doubles — the comparison below is bit-level).
template <typename Model, typename Config>
std::vector<std::vector<double>> TrainAndScore(const Fixture& fx,
                                               Config config,
                                               ParallelMode mode,
                                               int threads) {
  config.parallel_mode = mode;
  config.num_threads = threads;
  Model model(config);
  EXPECT_TRUE(model.Fit(fx.dataset, fx.split).ok());
  std::vector<std::vector<double>> scores;
  for (int u = 0; u < fx.dataset.num_users; u += 9) {
    std::vector<double> s;
    model.ScoreItems(u, &s);
    scores.push_back(std::move(s));
  }
  return scores;
}

template <typename Model, typename Config>
void ExpectThreadInvariant(Config config, ParallelMode mode) {
  Fixture fx;
  const auto one = TrainAndScore<Model>(fx, config, mode, 1);
  const auto two = TrainAndScore<Model>(fx, config, mode, 2);
  const auto eight = TrainAndScore<Model>(fx, config, mode, 8);
  ASSERT_EQ(one.size(), two.size());
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], two[i]) << "threads 1 vs 2, probe user #" << i;
    EXPECT_EQ(one[i], eight[i]) << "threads 1 vs 8, probe user #" << i;
  }
}

LogiRecConfig SmallLogiRecConfig() {
  LogiRecConfig config;
  config.dim = 16;
  config.layers = 2;
  config.epochs = 6;
  config.seed = 3;
  config.verbose = false;
  return config;
}

TrainConfig SmallBaselineConfig() {
  TrainConfig config;
  config.dim = 12;
  config.layers = 2;
  config.epochs = 6;
  config.seed = 3;
  return config;
}

TEST(TrainParallelTest, LogiRecDeterministicModeIsThreadInvariant) {
  ExpectThreadInvariant<LogiRecModel>(SmallLogiRecConfig(),
                                      ParallelMode::kDeterministic);
}

TEST(TrainParallelTest, LogiRecWithoutMiningIsThreadInvariant) {
  // The default config is LogiRec++ (mining on); cover plain LogiRec too
  // so the batched logic kernels are exercised without the weighting.
  LogiRecConfig config = SmallLogiRecConfig();
  config.use_mining = false;
  ExpectThreadInvariant<LogiRecModel>(config, ParallelMode::kDeterministic);
}

TEST(TrainParallelTest, RelationMiniBatchingIsThreadInvariant) {
  // Sampled logic slices come from counter streams keyed on
  // (seed, epoch, shard) — metrics must stay a pure function of the seed.
  LogiRecConfig config = SmallLogiRecConfig();
  config.logic_batch = 24;
  ExpectThreadInvariant<LogiRecModel>(config, ParallelMode::kDeterministic);
}

TEST(TrainParallelTest, LogicParallelOverrideKeepsMetricsIdentical) {
  // det full pass is bit-identical to the sequential scalar loop, so
  // forcing either override inside a deterministic run must not change a
  // single score.
  Fixture fx;
  LogiRecConfig config = SmallLogiRecConfig();
  config.logic_parallel = LogicParallel::kSequential;
  const auto seq_logic = TrainAndScore<LogiRecModel>(
      fx, config, ParallelMode::kDeterministic, 2);
  config.logic_parallel = LogicParallel::kDeterministic;
  const auto det_logic = TrainAndScore<LogiRecModel>(
      fx, config, ParallelMode::kDeterministic, 2);
  ASSERT_EQ(seq_logic.size(), det_logic.size());
  for (size_t i = 0; i < seq_logic.size(); ++i) {
    EXPECT_EQ(seq_logic[i], det_logic[i]) << "probe user #" << i;
  }
}

TEST(TrainParallelTest, HgcfDeterministicModeIsThreadInvariant) {
  ExpectThreadInvariant<baselines::Hgcf>(SmallBaselineConfig(),
                                         ParallelMode::kDeterministic);
}

TEST(TrainParallelTest, CmlDeterministicModeIsThreadInvariant) {
  ExpectThreadInvariant<baselines::Cml>(SmallBaselineConfig(),
                                        ParallelMode::kDeterministic);
}

TEST(TrainParallelTest, SequentialModeIsThreadInvariant) {
  // kSequential keeps the legacy one-stream draw order; the remaining
  // parallelism (propagation, row updates) is per-row independent, so it
  // must be bit-identical across worker counts too.
  ExpectThreadInvariant<LogiRecModel>(SmallLogiRecConfig(),
                                      ParallelMode::kSequential);
}

TEST(TrainParallelTest, ModesProduceDistinctButValidStreams) {
  // The two modes draw negatives from different RNG streams, so they are
  // not expected to coincide — but both must train a usable model.
  Fixture fx;
  LogiRecConfig config = SmallLogiRecConfig();
  config.epochs = 30;
  for (ParallelMode mode :
       {ParallelMode::kDeterministic, ParallelMode::kSequential}) {
    config.parallel_mode = mode;
    config.num_threads = 2;
    LogiRecModel model(config);
    ASSERT_TRUE(model.Fit(fx.dataset, fx.split).ok());
    eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
    EXPECT_GT(evaluator.Evaluate(model).Get("Recall@10"), 7.0)
        << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace logirec::core
