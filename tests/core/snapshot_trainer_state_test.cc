// Trainer-state trailer (snapshot v2 extension): round-trips the
// optimization point exactly, degrades gracefully on scoring-only
// snapshots, and turns every trailer corruption into a descriptive
// error. Built into the ASan+UBSan CI job.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "core/snapshot.h"
#include "data/synthetic.h"

namespace logirec::core {
namespace {

class SnapshotTrainerStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_trainer_state_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 50;
    config.num_items = 70;
    config.seed = 13;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TrainConfig FastConfig() const {
    TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 5;
    return config;
  }

  /// Trains `name` and writes its snapshot, keeping the trained model
  /// alive in `trained_` for state comparison.
  std::string WriteSnapshot(const std::string& name,
                            bool include_trainer_state) {
    const TrainConfig config = FastConfig();
    auto model = baselines::MakeModel(name, config);
    EXPECT_TRUE(model.ok()) << name;
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok()) << name;
    trained_ = std::move(*model);
    SnapshotHeader header;
    header.dim = config.dim;
    header.layers = config.layers;
    header.num_users = dataset_.num_users;
    header.num_items = dataset_.num_items;
    const std::string path = dir_ + "/" + name + ".snap";
    EXPECT_TRUE(ModelSnapshot::Write(*trained_, header, path,
                                     SnapshotDtype::kF64,
                                     include_trainer_state)
                    .ok())
        << name;
    return path;
  }

  /// Element-wise comparison of two models' registered trainer state.
  void ExpectSameTrainerState(Recommender* a, Recommender* b) {
    ParameterSet sa, sb;
    a->CollectTrainerState(&sa);
    b->CollectTrainerState(&sb);
    ASSERT_EQ(sa.matrices.size(), sb.matrices.size());
    ASSERT_EQ(sa.vectors.size(), sb.vectors.size());
    ASSERT_EQ(sa.scalars.size(), sb.scalars.size());
    for (size_t i = 0; i < sa.matrices.size(); ++i) {
      ASSERT_EQ(sa.matrices[i]->rows(), sb.matrices[i]->rows());
      ASSERT_EQ(sa.matrices[i]->cols(), sb.matrices[i]->cols());
      EXPECT_EQ(sa.matrices[i]->data(), sb.matrices[i]->data())
          << "trainer matrix " << i;
    }
    for (size_t i = 0; i < sa.vectors.size(); ++i) {
      ASSERT_EQ(sa.vectors[i]->size(), sb.vectors[i]->size());
      for (size_t j = 0; j < sa.vectors[i]->size(); ++j) {
        EXPECT_EQ((*sa.vectors[i])[j], (*sb.vectors[i])[j])
            << "trainer vector " << i << "[" << j << "]";
      }
    }
    for (size_t i = 0; i < sa.scalars.size(); ++i) {
      EXPECT_EQ(*sa.scalars[i], *sb.scalars[i]) << "trainer scalar " << i;
    }
  }

  std::vector<unsigned char> Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
  }

  void Dump(const std::string& path,
            const std::vector<unsigned char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }

  std::string dir_;
  data::Dataset dataset_;
  data::Split split_;
  std::unique_ptr<Recommender> trained_;
};

TEST_F(SnapshotTrainerStateTest, TrailerRoundTripsExactlyForEveryModel) {
  // Models whose training keeps state beyond the scoring tensors (the
  // pre-propagation user tables). BPRMF's scoring state is already its
  // complete trainer state, so it has no trailer — covered below.
  for (const std::string name : {"HGCF", "LogiRec", "LogiRec++"}) {
    const std::string path = WriteSnapshot(name, true);
    SnapshotHeader header;
    auto restored =
        ModelSnapshot::Read(path, baselines::MakeModel, &header);
    ASSERT_TRUE(restored.ok()) << name << ": "
                               << restored.status().ToString();
    EXPECT_TRUE(header.has_trainer_state) << name;
    ExpectSameTrainerState(trained_.get(), restored->get());
  }
}

TEST_F(SnapshotTrainerStateTest, ScoringOnlySnapshotReportsNoState) {
  const std::string path = WriteSnapshot("LogiRec++", false);
  SnapshotHeader header;
  auto restored = ModelSnapshot::Read(path, baselines::MakeModel, &header);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(header.has_trainer_state);
}

TEST_F(SnapshotTrainerStateTest, TrailerGrowsTheFileOnlyWhenStateExists) {
  // LogiRec++ registers trainer state, so the trailer adds bytes.
  const auto with_state = Slurp(WriteSnapshot("LogiRec++", true));
  const auto without_state = Slurp(WriteSnapshot("LogiRec++", false));
  EXPECT_GT(with_state.size(), without_state.size());

  // BPRMF registers none: include_trainer_state is a no-op and the file
  // stays byte-identical to a plain scoring snapshot.
  const auto bprmf_with = Slurp(WriteSnapshot("BPRMF", true));
  const auto bprmf_without = Slurp(WriteSnapshot("BPRMF", false));
  EXPECT_EQ(bprmf_with, bprmf_without);
  SnapshotHeader header;
  auto restored = ModelSnapshot::Read(dir_ + "/BPRMF.snap",
                                      baselines::MakeModel, &header);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(header.has_trainer_state);
}

TEST_F(SnapshotTrainerStateTest, FlippedTrailerPayloadByteFailsChecksum) {
  const std::string path = WriteSnapshot("LogiRec++", true);
  auto bytes = Slurp(path);
  const std::string scoring_only = WriteSnapshot("LogiRec++", false);
  const size_t trailer_start = Slurp(scoring_only).size();
  ASSERT_LT(trailer_start, bytes.size());
  // Flip a byte well inside the trailer's first tensor payload (past the
  // magic + counts + shape words).
  bytes[trailer_start + 32] ^= 0xFF;
  Dump(path, bytes);
  const auto result = ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trainer"), std::string::npos)
      << result.status().ToString();
}

TEST_F(SnapshotTrainerStateTest, TruncatedTrailerFailsCleanly) {
  const std::string path = WriteSnapshot("LogiRec++", true);
  const auto bytes = Slurp(path);
  const std::string scoring_only = WriteSnapshot("LogiRec++", false);
  const size_t trailer_start = Slurp(scoring_only).size();
  for (const size_t cut : {trailer_start + 2, trailer_start + 6,
                           trailer_start + 20, bytes.size() - 8}) {
    ASSERT_LT(cut, bytes.size());
    const std::string truncated = dir_ + "/truncated.snap";
    Dump(truncated,
         std::vector<unsigned char>(bytes.begin(), bytes.begin() + cut));
    EXPECT_FALSE(ModelSnapshot::Read(truncated, baselines::MakeModel).ok())
        << "cut at " << cut;
  }
}

TEST_F(SnapshotTrainerStateTest, CompactDtypeStillCarriesExactTrailer) {
  const TrainConfig config = FastConfig();
  auto model = baselines::MakeModel("LogiRec++", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(dataset_, split_).ok());
  SnapshotHeader header;
  header.dim = config.dim;
  header.layers = config.layers;
  header.num_users = dataset_.num_users;
  header.num_items = dataset_.num_items;
  const std::string path = dir_ + "/compact.snap";
  ASSERT_TRUE(ModelSnapshot::Write(**model, header, path,
                                   SnapshotDtype::kF32,
                                   /*include_trainer_state=*/true)
                  .ok());
  SnapshotHeader restored_header;
  auto restored =
      ModelSnapshot::Read(path, baselines::MakeModel, &restored_header);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored_header.has_trainer_state);
  // The scoring tensors were quantized to f32, but the trailer is always
  // exact f64: the restored trainer state matches the source bit for bit.
  ParameterSet source_state, restored_state;
  (*model)->CollectTrainerState(&source_state);
  (*restored)->CollectTrainerState(&restored_state);
  ASSERT_EQ(source_state.matrices.size(), restored_state.matrices.size());
  for (size_t i = 0; i < source_state.matrices.size(); ++i) {
    EXPECT_EQ(source_state.matrices[i]->data(),
              restored_state.matrices[i]->data());
  }
}

}  // namespace
}  // namespace logirec::core
