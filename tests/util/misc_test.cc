#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace logirec {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, HandlesEmptyAndSingleRanges) {
  std::atomic<int> count{0};
  ParallelFor(5, 5, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  ParallelFor(5, 6, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, RespectsOffsetRange) {
  std::atomic<long> sum{0};
  ParallelFor(10, 20, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(0, 5, [&](int i) { order.push_back(i); }, /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Method", "Recall@10"});
  table.AddRow({"BPRMF", "3.18"});
  table.AddSeparator();
  table.AddRow({"LogiRec++", "6.67"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Method    |"), std::string::npos);
  EXPECT_NE(out.find("| LogiRec++ |"), std::string::npos);
  // header rule + separator + top/bottom rules = 4 rule lines.
  size_t rules = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    if (out[pos] == '+') ++rules;
    pos = out.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FormatMeanStdTest, TwoDecimalPlaces) {
  EXPECT_EQ(FormatMeanStd(6.6666, 0.0512), "6.67±0.05");
  EXPECT_EQ(FormatMeanStd(10.3, 0.061), "10.30±0.06");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace logirec
