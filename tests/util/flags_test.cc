#include "util/flags.h"

#include <gtest/gtest.h>

namespace logirec {
namespace {

char** MakeArgv(std::vector<std::string>* storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : *storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(FlagsTest, DefaultsWhenUnset) {
  FlagParser flags;
  flags.AddInt("epochs", 30, "epochs");
  flags.AddDouble("lr", 0.05, "lr");
  flags.AddString("dataset", "cd", "which");
  flags.AddBool("verbose", false, "verbosity");
  std::vector<std::string> argv = {"prog"};
  ASSERT_TRUE(flags.Parse(1, MakeArgv(&argv)).ok());
  EXPECT_EQ(flags.GetInt("epochs"), 30);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), 0.05);
  EXPECT_EQ(flags.GetString("dataset"), "cd");
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, ParsesAllTypes) {
  FlagParser flags;
  flags.AddInt("epochs", 30, "");
  flags.AddDouble("lr", 0.05, "");
  flags.AddString("dataset", "cd", "");
  flags.AddBool("verbose", false, "");
  std::vector<std::string> argv = {"prog", "--epochs=99", "--lr=0.5",
                                   "--dataset=book", "--verbose"};
  ASSERT_TRUE(flags.Parse(5, MakeArgv(&argv)).ok());
  EXPECT_EQ(flags.GetInt("epochs"), 99);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), 0.5);
  EXPECT_EQ(flags.GetString("dataset"), "book");
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, BoolAcceptsExplicitValues) {
  FlagParser flags;
  flags.AddBool("a", false, "");
  flags.AddBool("b", true, "");
  std::vector<std::string> argv = {"prog", "--a=true", "--b=0"};
  ASSERT_TRUE(flags.Parse(3, MakeArgv(&argv)).ok());
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagParser flags;
  flags.AddInt("epochs", 30, "");
  std::vector<std::string> argv = {"prog", "--epchs=10"};
  const Status st = flags.Parse(2, MakeArgv(&argv));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("epchs"), std::string::npos);
}

TEST(FlagsTest, MalformedValueIsError) {
  FlagParser flags;
  flags.AddInt("epochs", 30, "");
  std::vector<std::string> argv = {"prog", "--epochs=ten"};
  EXPECT_FALSE(flags.Parse(2, MakeArgv(&argv)).ok());
}

TEST(FlagsTest, MissingValueForNonBoolIsError) {
  FlagParser flags;
  flags.AddInt("epochs", 30, "");
  std::vector<std::string> argv = {"prog", "--epochs"};
  EXPECT_FALSE(flags.Parse(2, MakeArgv(&argv)).ok());
}

TEST(FlagsTest, PositionalArgumentIsError) {
  FlagParser flags;
  std::vector<std::string> argv = {"prog", "stray"};
  EXPECT_FALSE(flags.Parse(2, MakeArgv(&argv)).ok());
}

TEST(FlagsTest, UsageListsFlags) {
  FlagParser flags;
  flags.AddInt("epochs", 30, "number of epochs");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--epochs=30"), std::string::npos);
  EXPECT_NE(usage.find("number of epochs"), std::string::npos);
}

}  // namespace
}  // namespace logirec
