#include "util/status.h"

#include <gtest/gtest.h>

namespace logirec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad dim");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status Helper(bool fail) {
  if (fail) {
    LOGIREC_RETURN_IF_ERROR(Status::Internal("inner"));
  }
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace logirec
