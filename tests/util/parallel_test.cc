#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/parallel.h"

namespace logirec {
namespace {

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(3, 3, [&](int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ReversedRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(5, 2, [&](int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, MoreThreadsThanWorkVisitsEachIndexOnce) {
  constexpr int kN = 7;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(0, kN, [&](int i) { ++counts[i]; }, /*num_threads=*/32);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelForTest, SingleThreadRunsInOrder) {
  std::vector<int> order;
  ParallelFor(2, 12, [&](int i) { order.push_back(i); }, /*num_threads=*/1);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i + 2);
}

TEST(ParallelForTest, CoversLargeRangeExactlyOnce) {
  constexpr int kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(0, kN, [&](int i) { ++counts[i]; });
  long total = 0;
  for (int i = 0; i < kN; ++i) total += counts[i].load();
  EXPECT_EQ(total, kN);
}

TEST(ParallelForTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

TEST(ResolveWorkerCountTest, NeverExceedsWorkOrRequest) {
  EXPECT_EQ(ResolveWorkerCount(4, 100), 4);
  EXPECT_EQ(ResolveWorkerCount(8, 3), 3);
  EXPECT_EQ(ResolveWorkerCount(0, 1), 1);
  EXPECT_EQ(ResolveWorkerCount(4, 0), 0);
  EXPECT_EQ(ResolveWorkerCount(0, 1'000'000), DefaultThreadCount());
}

TEST(ParallelForWorkerTest, VisitsEachIndexOnceWithValidWorkerIds) {
  constexpr int kN = 5'000;
  const int workers = ResolveWorkerCount(4, kN);
  std::vector<std::atomic<int>> counts(kN);
  std::vector<std::atomic<int>> worker_hits(workers);
  ParallelForWorker(
      0, kN,
      [&](int worker, int i) {
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, workers);
        ++counts[i];
        ++worker_hits[worker];
      },
      /*num_threads=*/4);
  for (int i = 0; i < kN; ++i) ASSERT_EQ(counts[i].load(), 1) << i;
  long total = 0;
  for (int w = 0; w < workers; ++w) total += worker_hits[w].load();
  EXPECT_EQ(total, kN);
}

TEST(ParallelForWorkerTest, SingleThreadUsesWorkerZeroInOrder) {
  std::vector<int> order;
  ParallelForWorker(
      0, 6,
      [&](int worker, int i) {
        EXPECT_EQ(worker, 0);
        order.push_back(i);
      },
      /*num_threads=*/1);
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace logirec
