#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/parallel.h"

namespace logirec {
namespace {

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(3, 3, [&](int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ReversedRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(5, 2, [&](int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, MoreThreadsThanWorkVisitsEachIndexOnce) {
  constexpr int kN = 7;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(0, kN, [&](int i) { ++counts[i]; }, /*num_threads=*/32);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelForTest, SingleThreadRunsInOrder) {
  std::vector<int> order;
  ParallelFor(2, 12, [&](int i) { order.push_back(i); }, /*num_threads=*/1);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i + 2);
}

TEST(ParallelForTest, CoversLargeRangeExactlyOnce) {
  constexpr int kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(0, kN, [&](int i) { ++counts[i]; });
  long total = 0;
  for (int i = 0; i < kN; ++i) total += counts[i].load();
  EXPECT_EQ(total, kN);
}

TEST(ParallelForTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace logirec
