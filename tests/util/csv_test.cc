#include "util/csv.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace logirec {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/logirec_csv_test.csv";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(CsvTest, RoundTripSimple) {
  CsvTable table;
  table.header = {"user", "item"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  ASSERT_TRUE(WriteCsv(path_, table).ok());
  auto loaded = ReadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->header, table.header);
  EXPECT_EQ(loaded->rows, table.rows);
}

TEST_F(CsvTest, RoundTripQuotedFields) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"Goth & Industrial", "has, comma"},
                {"say \"hi\"", "plain"}};
  ASSERT_TRUE(WriteCsv(path_, table).ok());
  auto loaded = ReadCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
}

TEST_F(CsvTest, ColumnIndex) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  EXPECT_EQ(table.ColumnIndex("b"), 1);
  EXPECT_EQ(table.ColumnIndex("z"), -1);
}

TEST_F(CsvTest, ReadMissingFileFails) {
  auto loaded = ReadCsv(path_ + ".nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, WriteToBadPathFails) {
  CsvTable table;
  table.header = {"x"};
  EXPECT_FALSE(WriteCsv("/nonexistent_dir_zz/file.csv", table).ok());
}

}  // namespace
}  // namespace logirec
