#include "util/string_util.h"

#include <gtest/gtest.h>

namespace logirec {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_FALSE(ParseDouble("one").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("CiAo"), "ciao");
  EXPECT_EQ(ToLower("already"), "already");
}

}  // namespace
}  // namespace logirec
