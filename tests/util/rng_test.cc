#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace logirec {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(4);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.UniformInt(3, 5);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 5);
    saw_lo |= (x == 3);
    saw_hi |= (x == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(7);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 6.0})];
  }
  EXPECT_NEAR(counts[0] / 9000.0, 1.0 / 9, 0.02);
  EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(9);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace logirec
