#include "graph/propagation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logirec::graph {
namespace {

using math::Matrix;

BipartiteGraph TinyGraph() {
  // user 0 - items {0,1}; user 1 - item {1}; user 2 - items {0,2}.
  return BipartiteGraph(3, 3, {{0, 1}, {1}, {0, 2}});
}

TEST(BipartiteGraphTest, DegreesAndReverseAdjacency) {
  auto g = TinyGraph();
  EXPECT_EQ(g.num_users(), 3);
  EXPECT_EQ(g.num_items(), 3);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.UserDegree(0), 2);
  EXPECT_EQ(g.ItemDegree(1), 2);
  EXPECT_EQ(g.UsersOf(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(g.ItemsOf(2), (std::vector<int>{0, 2}));
}

TEST(PropagationTest, SingleLayerMatchesHandComputation) {
  auto g = TinyGraph();
  GcnPropagator prop(&g, 1, Norm::kReceiver);
  Matrix zu(3, 1), zv(3, 1);
  zu.At(0, 0) = 1.0;
  zu.At(1, 0) = 2.0;
  zu.At(2, 0) = 4.0;
  zv.At(0, 0) = 8.0;
  zv.At(1, 0) = 16.0;
  zv.At(2, 0) = 32.0;
  Matrix su, sv;
  prop.Forward(zu, zv, &su, &sv, /*include_layer0=*/false);
  // z_u^1 = z_u^0 + mean of neighbor items.
  EXPECT_DOUBLE_EQ(su.At(0, 0), 1.0 + (8.0 + 16.0) / 2.0);
  EXPECT_DOUBLE_EQ(su.At(1, 0), 2.0 + 16.0);
  EXPECT_DOUBLE_EQ(su.At(2, 0), 4.0 + (8.0 + 32.0) / 2.0);
  // z_v^1 = z_v^0 + mean of neighbor users.
  EXPECT_DOUBLE_EQ(sv.At(0, 0), 8.0 + (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(sv.At(1, 0), 16.0 + (1.0 + 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(sv.At(2, 0), 32.0 + 4.0);
}

TEST(PropagationTest, IncludeLayer0AddsInputs) {
  auto g = TinyGraph();
  GcnPropagator prop(&g, 1, Norm::kReceiver);
  Matrix zu(3, 1), zv(3, 1);
  zu.At(0, 0) = 1.0;
  Matrix a_su, a_sv, b_su, b_sv;
  prop.Forward(zu, zv, &a_su, &a_sv, false);
  prop.Forward(zu, zv, &b_su, &b_sv, true);
  EXPECT_DOUBLE_EQ(b_su.At(0, 0) - a_su.At(0, 0), 1.0);
}

// The adjoint identity <F(x), y> == <x, F^T(y)> for random inputs — the
// exactness of the linear-GCN backprop that LogiRec relies on.
class PropagationAdjointTest
    : public ::testing::TestWithParam<std::tuple<int, Norm, bool>> {};

TEST_P(PropagationAdjointTest, AdjointIdentityHolds) {
  const auto [layers, norm, include0] = GetParam();
  Rng rng(layers * 7 + static_cast<int>(norm) + (include0 ? 100 : 0));
  // Random bipartite graph.
  const int nu = 7, ni = 9, dim = 3;
  std::vector<std::vector<int>> adj(nu);
  for (int u = 0; u < nu; ++u) {
    for (int v = 0; v < ni; ++v) {
      if (rng.Bernoulli(0.3)) adj[u].push_back(v);
    }
  }
  BipartiteGraph g(nu, ni, adj);
  GcnPropagator prop(&g, layers, norm);

  Matrix zu(nu, dim), zv(ni, dim), yu(nu, dim), yv(ni, dim);
  zu.FillGaussian(&rng, 1.0);
  zv.FillGaussian(&rng, 1.0);
  yu.FillGaussian(&rng, 1.0);
  yv.FillGaussian(&rng, 1.0);

  Matrix su, sv;
  prop.Forward(zu, zv, &su, &sv, include0);
  double lhs = 0.0;
  for (size_t i = 0; i < su.data().size(); ++i) lhs += su.data()[i] * yu.data()[i];
  for (size_t i = 0; i < sv.data().size(); ++i) lhs += sv.data()[i] * yv.data()[i];

  Matrix gu(nu, dim), gv(ni, dim);
  prop.Backward(yu, yv, &gu, &gv, include0);
  double rhs = 0.0;
  for (size_t i = 0; i < gu.data().size(); ++i) rhs += gu.data()[i] * zu.data()[i];
  for (size_t i = 0; i < gv.data().size(); ++i) rhs += gv.data()[i] * zv.data()[i];

  EXPECT_NEAR(lhs, rhs, 1e-8 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    LayersNormsLayer0, PropagationAdjointTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(Norm::kReceiver, Norm::kSymmetric),
                       ::testing::Bool()));

TEST(PropagationTest, ColdNodesKeepTheirEmbedding) {
  // A user with no interactions must pass through unchanged (plus the
  // layer-sum scaling of its own vector).
  BipartiteGraph g(2, 1, {{0}, {}});
  GcnPropagator prop(&g, 2, Norm::kReceiver);
  Matrix zu(2, 1), zv(1, 1);
  zu.At(1, 0) = 5.0;
  Matrix su, sv;
  prop.Forward(zu, zv, &su, &sv, false);
  // z^1 = z^0, z^2 = z^1 for the isolated user: sum = 2 * 5.
  EXPECT_DOUBLE_EQ(su.At(1, 0), 10.0);
}

}  // namespace
}  // namespace logirec::graph
