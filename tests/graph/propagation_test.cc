#include "graph/propagation.h"

#include <cmath>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logirec::graph {
namespace {

using math::Matrix;

BipartiteGraph TinyGraph() {
  // user 0 - items {0,1}; user 1 - item {1}; user 2 - items {0,2}.
  return BipartiteGraph(3, 3, {{0, 1}, {1}, {0, 2}});
}

TEST(BipartiteGraphTest, DegreesAndReverseAdjacency) {
  auto g = TinyGraph();
  EXPECT_EQ(g.num_users(), 3);
  EXPECT_EQ(g.num_items(), 3);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.UserDegree(0), 2);
  EXPECT_EQ(g.ItemDegree(1), 2);
  EXPECT_EQ(g.UsersOf(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(g.ItemsOf(2), (std::vector<int>{0, 2}));
}

TEST(PropagationTest, SingleLayerMatchesHandComputation) {
  auto g = TinyGraph();
  GcnPropagator prop(&g, 1, Norm::kReceiver);
  Matrix zu(3, 1), zv(3, 1);
  zu.At(0, 0) = 1.0;
  zu.At(1, 0) = 2.0;
  zu.At(2, 0) = 4.0;
  zv.At(0, 0) = 8.0;
  zv.At(1, 0) = 16.0;
  zv.At(2, 0) = 32.0;
  Matrix su, sv;
  prop.Forward(zu, zv, &su, &sv, /*include_layer0=*/false);
  // z_u^1 = z_u^0 + mean of neighbor items.
  EXPECT_DOUBLE_EQ(su.At(0, 0), 1.0 + (8.0 + 16.0) / 2.0);
  EXPECT_DOUBLE_EQ(su.At(1, 0), 2.0 + 16.0);
  EXPECT_DOUBLE_EQ(su.At(2, 0), 4.0 + (8.0 + 32.0) / 2.0);
  // z_v^1 = z_v^0 + mean of neighbor users.
  EXPECT_DOUBLE_EQ(sv.At(0, 0), 8.0 + (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(sv.At(1, 0), 16.0 + (1.0 + 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(sv.At(2, 0), 32.0 + 4.0);
}

TEST(PropagationTest, IncludeLayer0AddsInputs) {
  auto g = TinyGraph();
  GcnPropagator prop(&g, 1, Norm::kReceiver);
  Matrix zu(3, 1), zv(3, 1);
  zu.At(0, 0) = 1.0;
  Matrix a_su, a_sv, b_su, b_sv;
  prop.Forward(zu, zv, &a_su, &a_sv, false);
  prop.Forward(zu, zv, &b_su, &b_sv, true);
  EXPECT_DOUBLE_EQ(b_su.At(0, 0) - a_su.At(0, 0), 1.0);
}

// The adjoint identity <F(x), y> == <x, F^T(y)> for random inputs — the
// exactness of the linear-GCN backprop that LogiRec relies on.
class PropagationAdjointTest
    : public ::testing::TestWithParam<std::tuple<int, Norm, bool>> {};

TEST_P(PropagationAdjointTest, AdjointIdentityHolds) {
  const auto [layers, norm, include0] = GetParam();
  Rng rng(layers * 7 + static_cast<int>(norm) + (include0 ? 100 : 0));
  // Random bipartite graph.
  const int nu = 7, ni = 9, dim = 3;
  std::vector<std::vector<int>> adj(nu);
  for (int u = 0; u < nu; ++u) {
    for (int v = 0; v < ni; ++v) {
      if (rng.Bernoulli(0.3)) adj[u].push_back(v);
    }
  }
  BipartiteGraph g(nu, ni, adj);
  GcnPropagator prop(&g, layers, norm);

  Matrix zu(nu, dim), zv(ni, dim), yu(nu, dim), yv(ni, dim);
  zu.FillGaussian(&rng, 1.0);
  zv.FillGaussian(&rng, 1.0);
  yu.FillGaussian(&rng, 1.0);
  yv.FillGaussian(&rng, 1.0);

  Matrix su, sv;
  prop.Forward(zu, zv, &su, &sv, include0);
  double lhs = 0.0;
  for (size_t i = 0; i < su.data().size(); ++i) lhs += su.data()[i] * yu.data()[i];
  for (size_t i = 0; i < sv.data().size(); ++i) lhs += sv.data()[i] * yv.data()[i];

  Matrix gu(nu, dim), gv(ni, dim);
  prop.Backward(yu, yv, &gu, &gv, include0);
  double rhs = 0.0;
  for (size_t i = 0; i < gu.data().size(); ++i) rhs += gu.data()[i] * zu.data()[i];
  for (size_t i = 0; i < gv.data().size(); ++i) rhs += gv.data()[i] * zv.data()[i];

  EXPECT_NEAR(lhs, rhs, 1e-8 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    LayersNormsLayer0, PropagationAdjointTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(Norm::kReceiver, Norm::kSymmetric),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Bit-identity oracle: the original per-edge implementation (pre-CSR),
// kept verbatim as a reference. The CSR kernels must reproduce it to the
// last bit — same weight expressions, same adjacency order, same
// per-element accumulation sequence.
// ---------------------------------------------------------------------------

double RefEdgeWeight(const BipartiteGraph& g, Norm norm, int user, int item,
                     bool transpose) {
  const int du = g.UserDegree(user);
  const int dv = g.ItemDegree(item);
  switch (norm) {
    case Norm::kReceiver:
      if (!transpose) return du > 0 ? 1.0 / du : 0.0;
      return dv > 0 ? 1.0 / dv : 0.0;
    case Norm::kSymmetric: {
      const double prod = static_cast<double>(du) * dv;
      return prod > 0.0 ? 1.0 / std::sqrt(prod) : 0.0;
    }
  }
  return 0.0;
}

void RefAggregateToUsers(const BipartiteGraph& g, Norm norm,
                         const Matrix& items, Matrix* out_users,
                         bool transpose) {
  const int dim = items.cols();
  for (int u = 0; u < g.num_users(); ++u) {
    auto dst = out_users->Row(u);
    for (int v : g.ItemsOf(u)) {
      const double w = RefEdgeWeight(g, norm, u, v, transpose);
      auto src = items.Row(v);
      for (int k = 0; k < dim; ++k) dst[k] += w * src[k];
    }
  }
}

void RefAggregateToItems(const BipartiteGraph& g, Norm norm,
                         const Matrix& users, Matrix* out_items,
                         bool transpose) {
  const int dim = users.cols();
  for (int v = 0; v < g.num_items(); ++v) {
    auto dst = out_items->Row(v);
    for (int u : g.UsersOf(v)) {
      double w = 0.0;
      switch (norm) {
        case Norm::kReceiver:
          w = transpose
                  ? (g.UserDegree(u) > 0 ? 1.0 / g.UserDegree(u) : 0.0)
                  : (g.ItemDegree(v) > 0 ? 1.0 / g.ItemDegree(v) : 0.0);
          break;
        case Norm::kSymmetric:
          w = RefEdgeWeight(g, norm, u, v, /*transpose=*/false);
          break;
      }
      auto src = users.Row(u);
      for (int k = 0; k < dim; ++k) dst[k] += w * src[k];
    }
  }
}

void RefForward(const BipartiteGraph& g, Norm norm, int layers,
                const Matrix& zu0, const Matrix& zv0, Matrix* su, Matrix* sv,
                bool include_layer0) {
  const int dim = zu0.cols();
  *su = Matrix(zu0.rows(), dim, 0.0);
  *sv = Matrix(zv0.rows(), dim, 0.0);
  Matrix cu = zu0;
  Matrix cv = zv0;
  if (include_layer0) {
    su->data() = cu.data();
    sv->data() = cv.data();
  }
  for (int l = 1; l <= layers; ++l) {
    Matrix nu = cu;
    Matrix nv = cv;
    RefAggregateToUsers(g, norm, cv, &nu, /*transpose=*/false);
    RefAggregateToItems(g, norm, cu, &nv, /*transpose=*/false);
    for (size_t i = 0; i < su->data().size(); ++i) {
      su->data()[i] += nu.data()[i];
    }
    for (size_t i = 0; i < sv->data().size(); ++i) {
      sv->data()[i] += nv.data()[i];
    }
    cu = std::move(nu);
    cv = std::move(nv);
  }
}

void RefBackward(const BipartiteGraph& g, Norm norm, int layers,
                 const Matrix& gsu, const Matrix& gsv, Matrix* gzu0,
                 Matrix* gzv0, bool include_layer0) {
  Matrix lu = gsu;
  Matrix lv = gsv;
  if (layers == 0) {
    if (include_layer0) {
      for (size_t i = 0; i < lu.data().size(); ++i) {
        gzu0->data()[i] += lu.data()[i];
      }
      for (size_t i = 0; i < lv.data().size(); ++i) {
        gzv0->data()[i] += lv.data()[i];
      }
    }
    return;
  }
  for (int l = layers - 1; l >= 0; --l) {
    Matrix nlu = lu;
    Matrix nlv = lv;
    RefAggregateToUsers(g, norm, lv, &nlu, /*transpose=*/true);
    RefAggregateToItems(g, norm, lu, &nlv, /*transpose=*/true);
    const bool in_sum = (l >= 1) || include_layer0;
    if (in_sum) {
      for (size_t i = 0; i < nlu.data().size(); ++i) {
        nlu.data()[i] += gsu.data()[i];
      }
      for (size_t i = 0; i < nlv.data().size(); ++i) {
        nlv.data()[i] += gsv.data()[i];
      }
    }
    lu = std::move(nlu);
    lv = std::move(nlv);
  }
  for (size_t i = 0; i < lu.data().size(); ++i) gzu0->data()[i] += lu.data()[i];
  for (size_t i = 0; i < lv.data().size(); ++i) gzv0->data()[i] += lv.data()[i];
}

class PropagationOracleTest
    : public ::testing::TestWithParam<std::tuple<int, Norm, bool>> {};

TEST_P(PropagationOracleTest, CsrForwardAndBackwardBitIdenticalToReference) {
  const auto [layers, norm, include0] = GetParam();
  Rng rng(layers * 31 + static_cast<int>(norm) * 7 + (include0 ? 1 : 0));
  const int nu = 13, ni = 17, dim = 5;
  std::vector<std::vector<int>> adj(nu);
  for (int u = 0; u < nu; ++u) {
    for (int v = 0; v < ni; ++v) {
      if (rng.Bernoulli(0.35)) adj[u].push_back(v);
    }
  }
  BipartiteGraph g(nu, ni, adj);
  GcnPropagator prop(&g, layers, norm, /*num_threads=*/3);

  Matrix zu(nu, dim), zv(ni, dim), yu(nu, dim), yv(ni, dim);
  zu.FillGaussian(&rng, 1.0);
  zv.FillGaussian(&rng, 1.0);
  yu.FillGaussian(&rng, 1.0);
  yv.FillGaussian(&rng, 1.0);

  Matrix su, sv, ref_su, ref_sv;
  prop.Forward(zu, zv, &su, &sv, include0);
  RefForward(g, norm, layers, zu, zv, &ref_su, &ref_sv, include0);
  // EXPECT_EQ on the flat double vectors is exact — bit identity, not an
  // epsilon comparison.
  EXPECT_EQ(su.data(), ref_su.data());
  EXPECT_EQ(sv.data(), ref_sv.data());

  Matrix gu(nu, dim, 0.0), gv(ni, dim, 0.0);
  Matrix ref_gu(nu, dim, 0.0), ref_gv(ni, dim, 0.0);
  prop.Backward(yu, yv, &gu, &gv, include0);
  RefBackward(g, norm, layers, yu, yv, &ref_gu, &ref_gv, include0);
  EXPECT_EQ(gu.data(), ref_gu.data());
  EXPECT_EQ(gv.data(), ref_gv.data());
}

INSTANTIATE_TEST_SUITE_P(
    LayersNormsLayer0, PropagationOracleTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(Norm::kReceiver, Norm::kSymmetric),
                       ::testing::Bool()));

TEST(PropagationTest, ForwardReusesOutputCapacityAcrossCalls) {
  // The hot path runs Forward/Backward every batch; after the first call
  // warms up the scratch, repeat calls must not reallocate the outputs
  // (vector::assign keeps capacity, so the buffer address is stable).
  auto g = TinyGraph();
  GcnPropagator prop(&g, 2, Norm::kSymmetric);
  Matrix zu(3, 4), zv(3, 4);
  Rng rng(5);
  zu.FillGaussian(&rng, 1.0);
  zv.FillGaussian(&rng, 1.0);
  Matrix su, sv;
  prop.Forward(zu, zv, &su, &sv, true);
  const double* su_buf = su.data().data();
  const double* sv_buf = sv.data().data();
  Matrix first_su = su;
  for (int rep = 0; rep < 3; ++rep) {
    prop.Forward(zu, zv, &su, &sv, true);
    EXPECT_EQ(su.data().data(), su_buf) << "rep " << rep;
    EXPECT_EQ(sv.data().data(), sv_buf) << "rep " << rep;
  }
  EXPECT_EQ(su.data(), first_su.data());  // repeat calls are idempotent
}

TEST(PropagationTest, ColdNodesKeepTheirEmbedding) {
  // A user with no interactions must pass through unchanged (plus the
  // layer-sum scaling of its own vector).
  BipartiteGraph g(2, 1, {{0}, {}});
  GcnPropagator prop(&g, 2, Norm::kReceiver);
  Matrix zu(2, 1), zv(1, 1);
  zu.At(1, 0) = 5.0;
  Matrix su, sv;
  prop.Forward(zu, zv, &su, &sv, false);
  // z^1 = z^0, z^2 = z^1 for the isolated user: sum = 2 * 5.
  EXPECT_DOUBLE_EQ(su.At(1, 0), 10.0);
}

}  // namespace
}  // namespace logirec::graph
