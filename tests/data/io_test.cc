#include "data/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace logirec::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases as parallel processes, and a
    // shared directory lets concurrent cases clobber each other's files.
    dir_ = ::testing::TempDir() + "/logirec_io_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(IoTest, RoundTripPreservesDataset) {
  auto ds = GenerateBenchmarkDataset("ciao", 0.3);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(SaveDataset(*ds, dir_).ok());

  auto loaded = LoadDataset(dir_, "ciao-roundtrip");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users, ds->num_users);
  EXPECT_EQ(loaded->num_items, ds->num_items);
  ASSERT_EQ(loaded->interactions.size(), ds->interactions.size());
  for (size_t i = 0; i < ds->interactions.size(); ++i) {
    EXPECT_EQ(loaded->interactions[i].user, ds->interactions[i].user);
    EXPECT_EQ(loaded->interactions[i].item, ds->interactions[i].item);
    EXPECT_EQ(loaded->interactions[i].timestamp,
              ds->interactions[i].timestamp);
  }
  ASSERT_EQ(loaded->item_tags.size(), ds->item_tags.size());
  for (size_t i = 0; i < ds->item_tags.size(); ++i) {
    EXPECT_EQ(loaded->item_tags[i], ds->item_tags[i]);
  }
  ASSERT_EQ(loaded->taxonomy.num_tags(), ds->taxonomy.num_tags());
  for (int t = 0; t < ds->taxonomy.num_tags(); ++t) {
    EXPECT_EQ(loaded->taxonomy.tag(t).name, ds->taxonomy.tag(t).name);
    EXPECT_EQ(loaded->taxonomy.tag(t).parent, ds->taxonomy.tag(t).parent);
    EXPECT_EQ(loaded->taxonomy.tag(t).level, ds->taxonomy.tag(t).level);
  }
}

TEST_F(IoTest, LoadFromMissingDirectoryFails) {
  auto loaded = LoadDataset(dir_ + "/nope");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, CorruptTaxonomyParentIsAnErrorNotACrash) {
  // A taxonomy row pointing at a parent that does not exist yet must be
  // rejected with a Status, never an abort.
  auto ds = GenerateBenchmarkDataset("ciao", 0.3);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(SaveDataset(*ds, dir_).ok());
  std::ofstream out(dir_ + "/taxonomy.csv");
  out << "tag,name,parent\n0,Root,-1\n1,Broken,99\n";
  out.close();
  auto loaded = LoadDataset(dir_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, NegativeIdsInInteractionsRejected) {
  auto ds = GenerateBenchmarkDataset("ciao", 0.3);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(SaveDataset(*ds, dir_).ok());
  std::ofstream out(dir_ + "/interactions.csv");
  out << "user,item,timestamp\n-1,0,5\n";
  out.close();
  auto loaded = LoadDataset(dir_);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace logirec::data
