#include "data/dataset.h"

#include <gtest/gtest.h>

namespace logirec::data {
namespace {

Dataset MakeDataset() {
  Dataset ds;
  ds.name = "toy";
  ds.num_users = 2;
  ds.num_items = 5;
  const int a = ds.taxonomy.AddTag("A");
  ds.taxonomy.AddTag("A1", a);
  ds.taxonomy.AddTag("A2", a);
  ds.item_tags = {{1}, {1}, {2}, {2}, {0}};
  // user 0: 10 interactions in timestamp order; user 1: 5.
  for (int i = 0; i < 10; ++i) ds.interactions.push_back({0, i % 5, i});
  for (int i = 0; i < 5; ++i) ds.interactions.push_back({1, i, 100 - i});
  return ds;
}

TEST(DatasetTest, DensityPercent) {
  const Dataset ds = MakeDataset();
  EXPECT_NEAR(ds.DensityPercent(), 100.0 * 15 / (2 * 5), 1e-9);
}

TEST(DatasetTest, ValidateAcceptsGoodData) {
  EXPECT_TRUE(MakeDataset().Validate().ok());
}

TEST(DatasetTest, ValidateRejectsBadUser) {
  Dataset ds = MakeDataset();
  ds.interactions.push_back({7, 0, 0});
  const Status st = ds.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, ValidateRejectsBadTag) {
  Dataset ds = MakeDataset();
  ds.item_tags[0].push_back(99);
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateRejectsRowCountMismatch) {
  Dataset ds = MakeDataset();
  ds.item_tags.pop_back();
  const Status st = ds.Validate();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, ExtractRelationsCountsMembership) {
  const Dataset ds = MakeDataset();
  const LogicalRelations rel = ds.ExtractRelations();
  EXPECT_EQ(rel.memberships.size(), 5u);
  EXPECT_EQ(rel.hierarchy.size(), 2u);
  // A1/A2 co-occur on no item => exclusive.
  EXPECT_EQ(rel.exclusions.size(), 1u);
}

TEST(TemporalSplitTest, RespectsFractionsAndOrder) {
  const Dataset ds = MakeDataset();
  const Split split = TemporalSplit(ds, 0.6, 0.2);
  // user 0 has 10 events: 6 train, 2 validation, 2 test.
  EXPECT_EQ(split.train[0].size(), 6u);
  EXPECT_EQ(split.validation[0].size(), 2u);
  EXPECT_EQ(split.test[0].size(), 2u);
  // Earliest items (ts 0..5) are items 0,1,2,3,4,0.
  EXPECT_EQ(split.train[0][0], 0);
  EXPECT_EQ(split.train[0][1], 1);
  // user 1's timestamps are decreasing, so the split must reverse them:
  // earliest event is item 4 (ts 96).
  EXPECT_EQ(split.train[1][0], 4);
}

TEST(TemporalSplitTest, TinyUsersGoAllToTrain) {
  Dataset ds = MakeDataset();
  ds.num_users = 3;
  ds.interactions.push_back({2, 0, 5});
  ds.interactions.push_back({2, 1, 6});
  const Split split = TemporalSplit(ds);
  EXPECT_EQ(split.train[2].size(), 2u);
  EXPECT_TRUE(split.validation[2].empty());
  EXPECT_TRUE(split.test[2].empty());
}

TEST(TemporalSplitTest, TrainSizeSumsUsers) {
  const Dataset ds = MakeDataset();
  const Split split = TemporalSplit(ds);
  EXPECT_EQ(split.TrainSize(),
            static_cast<long>(split.train[0].size() + split.train[1].size()));
}

/// MakeDataset() saturates every (user, item) pair, so append tests use
/// a third user with no interactions yet.
Dataset MakeAppendableDataset() {
  Dataset ds = MakeDataset();
  ds.num_users = 3;
  return ds;
}

TEST(DatasetAppendTest, AcceptsNewPairsAndIndexesThem) {
  Dataset ds = MakeAppendableDataset();
  const size_t before = ds.interactions.size();
  EXPECT_TRUE(ds.Append({2, 0, 200}).ok());
  ASSERT_EQ(ds.interactions.size(), before + 1);
  EXPECT_EQ(ds.interactions.back().user, 2);
  EXPECT_EQ(ds.interactions.back().item, 0);
  EXPECT_EQ(ds.interactions.back().timestamp, 200);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(DatasetAppendTest, RejectsDuplicatePair) {
  Dataset ds = MakeDataset();
  const size_t before = ds.interactions.size();
  // (user 0, item 3) is already in the log (twice, in fact).
  const Status st = ds.Append({0, 3, 999});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(st.message().find("user=0"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("item=3"), std::string::npos) << st.message();
  EXPECT_EQ(ds.interactions.size(), before);  // log untouched
}

TEST(DatasetAppendTest, RejectsDuplicateOfAnAppendedPair) {
  Dataset ds = MakeAppendableDataset();
  EXPECT_TRUE(ds.Append({2, 0, 200}).ok());
  EXPECT_EQ(ds.Append({2, 0, 201}).code(), StatusCode::kAlreadyExists);
}

TEST(DatasetAppendTest, RejectsOutOfRangeUser) {
  Dataset ds = MakeDataset();
  const size_t before = ds.interactions.size();
  for (const int user : {-1, 2, 100}) {
    const Status st = ds.Append({user, 0, 0});
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << "user " << user;
    EXPECT_NE(st.message().find("user id"), std::string::npos)
        << st.message();
  }
  EXPECT_EQ(ds.interactions.size(), before);
}

TEST(DatasetAppendTest, RejectsOutOfRangeItem) {
  Dataset ds = MakeDataset();
  const size_t before = ds.interactions.size();
  for (const int item : {-1, 5, 42}) {
    const Status st = ds.Append({0, item, 0});
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << "item " << item;
    EXPECT_NE(st.message().find("item id"), std::string::npos)
        << st.message();
  }
  EXPECT_EQ(ds.interactions.size(), before);
}

TEST(ComputeStatsTest, MatchesDataset) {
  const Dataset ds = MakeDataset();
  const DatasetStats stats = ComputeStats(ds);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_items, 5);
  EXPECT_EQ(stats.num_interactions, 15);
  EXPECT_EQ(stats.num_tags, 3);
  EXPECT_EQ(stats.num_memberships, 5);
  EXPECT_EQ(stats.num_hierarchy, 2);
  EXPECT_EQ(stats.num_exclusions, 1);
}

}  // namespace
}  // namespace logirec::data
