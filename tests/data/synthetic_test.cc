#include "data/synthetic.h"

#include <set>

#include <gtest/gtest.h>

namespace logirec::data {
namespace {

class PresetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PresetTest, GeneratesValidDataset) {
  auto ds = GenerateBenchmarkDataset(GetParam(), /*scale=*/0.5);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_TRUE(ds->Validate().ok());
  EXPECT_GT(ds->num_users, 0);
  EXPECT_GT(ds->num_items, 0);
  EXPECT_GT(ds->interactions.size(), 0u);
  EXPECT_GT(ds->taxonomy.num_tags(), 0);
}

TEST_P(PresetTest, EveryUserHasEnoughInteractionsToSplit) {
  auto ds = GenerateBenchmarkDataset(GetParam(), 0.5);
  ASSERT_TRUE(ds.ok());
  std::vector<int> counts(ds->num_users, 0);
  for (const Interaction& x : ds->interactions) ++counts[x.user];
  for (int u = 0; u < ds->num_users; ++u) {
    EXPECT_GE(counts[u], 3) << "user " << u;
  }
}

TEST_P(PresetTest, TaggedItemsHaveConsistentLineage) {
  auto ds = GenerateBenchmarkDataset(GetParam(), 0.5);
  ASSERT_TRUE(ds.ok());
  int tagged = 0;
  for (int i = 0; i < ds->num_items; ++i) {
    // Some items are untagged (missing_tag_prob). For tagged items the
    // first tag is the observed leaf; the rest are its ancestors.
    if (ds->item_tags[i].empty()) continue;
    ++tagged;
    const int leaf = ds->item_tags[i][0];
    for (size_t k = 1; k < ds->item_tags[i].size(); ++k) {
      EXPECT_TRUE(ds->taxonomy.IsAncestorOrSelf(ds->item_tags[i][k], leaf));
    }
  }
  // Most items stay tagged under the default 10% missing rate.
  EXPECT_GT(tagged, ds->num_items * 3 / 4);
}

TEST(SyntheticTest, TagNoiseKnobsWork) {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 400;
  config.missing_tag_prob = 0.5;
  config.wrong_tag_prob = 0.0;
  const Dataset ds = GenerateSynthetic(config);
  int untagged = 0;
  for (const auto& tags : ds.item_tags) untagged += tags.empty();
  EXPECT_NEAR(untagged, 200, 60);

  config.missing_tag_prob = 0.0;
  const Dataset full = GenerateSynthetic(config);
  for (const auto& tags : full.item_tags) EXPECT_FALSE(tags.empty());
}

TEST_P(PresetTest, NoDuplicateInteractionsPerUser) {
  auto ds = GenerateBenchmarkDataset(GetParam(), 0.5);
  ASSERT_TRUE(ds.ok());
  std::set<std::pair<int, int>> seen;
  for (const Interaction& x : ds->interactions) {
    EXPECT_TRUE(seen.insert({x.user, x.item}).second)
        << "duplicate " << x.user << "," << x.item;
  }
}

TEST_P(PresetTest, DeterministicInSeed) {
  auto a = GenerateBenchmarkDataset(GetParam(), 0.5, 99);
  auto b = GenerateBenchmarkDataset(GetParam(), 0.5, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->interactions.size(), b->interactions.size());
  for (size_t i = 0; i < a->interactions.size(); ++i) {
    EXPECT_EQ(a->interactions[i].user, b->interactions[i].user);
    EXPECT_EQ(a->interactions[i].item, b->interactions[i].item);
  }
  auto c = GenerateBenchmarkDataset(GetParam(), 0.5, 100);
  ASSERT_TRUE(c.ok());
  bool differs = c->interactions.size() != a->interactions.size();
  for (size_t i = 0; !differs && i < a->interactions.size(); ++i) {
    differs = a->interactions[i].item != c->interactions[i].item;
  }
  EXPECT_TRUE(differs) << "different seeds must give different data";
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::Values("ciao", "cd", "clothing", "book"));

TEST(SyntheticTest, UnknownDatasetNameFails) {
  auto ds = GenerateBenchmarkDataset("netflix");
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(SyntheticTest, TableOneShapeHolds) {
  // Relative shape of Table I at scale 1: Ciao smallest and densest;
  // Clothing has the most tags and exclusions; Book the most
  // interactions.
  auto ciao = GenerateBenchmarkDataset("ciao");
  auto cd = GenerateBenchmarkDataset("cd");
  auto clothing = GenerateBenchmarkDataset("clothing");
  auto book = GenerateBenchmarkDataset("book");
  ASSERT_TRUE(ciao.ok() && cd.ok() && clothing.ok() && book.ok());
  const auto s_ciao = ComputeStats(*ciao);
  const auto s_cd = ComputeStats(*cd);
  const auto s_clothing = ComputeStats(*clothing);
  const auto s_book = ComputeStats(*book);

  EXPECT_LT(s_ciao.num_users, s_cd.num_users);
  EXPECT_GT(s_ciao.density_percent, s_clothing.density_percent);
  EXPECT_GT(s_clothing.num_tags, s_cd.num_tags);
  EXPECT_GT(s_clothing.num_exclusions, s_ciao.num_exclusions);
  EXPECT_GT(s_book.num_interactions, s_cd.num_interactions);
}

TEST(SyntheticTest, TaxonomyDepthMatchesConfig) {
  SyntheticConfig config;
  config.levels = 3;
  config.num_users = 50;
  config.num_items = 80;
  const Dataset ds = GenerateSynthetic(config);
  EXPECT_LE(ds.taxonomy.num_levels(), 3);
  EXPECT_GE(ds.taxonomy.num_levels(), 2);
}

TEST(SyntheticTest, ScaleGrowsCounts) {
  auto small = GenerateBenchmarkDataset("cd", 0.4);
  auto large = GenerateBenchmarkDataset("cd", 1.0);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(small->num_users, large->num_users);
  EXPECT_LT(small->interactions.size(), large->interactions.size());
}

/// GenerateSynthetic is StreamSynthetic plus a vector-appending sink, so
/// the two paths must emit identical interactions in identical order —
/// the scale bench consumes the streaming path and must see exactly the
/// dataset the materializing path would build.
TEST(StreamSyntheticTest, StreamMatchesMaterializedGeneration) {
  SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 150;
  config.seed = 31;
  const Dataset materialized = GenerateSynthetic(config);

  std::vector<Interaction> streamed;
  const Dataset skeleton =
      StreamSynthetic(config, [&streamed](const Interaction& x) {
        streamed.push_back(x);
      });
  EXPECT_TRUE(skeleton.interactions.empty());
  EXPECT_EQ(skeleton.num_users, materialized.num_users);
  EXPECT_EQ(skeleton.num_items, materialized.num_items);
  EXPECT_EQ(skeleton.item_tags, materialized.item_tags);

  ASSERT_EQ(streamed.size(), materialized.interactions.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].user, materialized.interactions[i].user) << i;
    EXPECT_EQ(streamed[i].item, materialized.interactions[i].item) << i;
    EXPECT_EQ(streamed[i].timestamp, materialized.interactions[i].timestamp)
        << i;
  }
}

TEST(StreamSyntheticTest, StreamOrderIsUserMajorWithAscendingTimestamps) {
  SyntheticConfig config;
  config.num_users = 80;
  config.num_items = 100;
  config.seed = 9;
  int last_user = -1;
  long last_ts = -1;
  StreamSynthetic(config, [&](const Interaction& x) {
    EXPECT_GE(x.user, last_user);
    if (x.user == last_user) {
      EXPECT_GT(x.timestamp, last_ts);
    } else {
      last_user = x.user;
    }
    last_ts = x.timestamp;
  });
  EXPECT_GE(last_user, 0);
}

/// The million preset at a tiny scale: right shape, valid dataset, and
/// reachable through the shared GenerateBenchmarkDataset front door the
/// benches use.
TEST(MillionScaleTest, PresetScalesAndValidates) {
  const SyntheticConfig config = MillionScaleConfig(1.0);
  EXPECT_EQ(config.num_users, 1000000);
  EXPECT_EQ(config.num_items, 100000);

  auto ds = GenerateBenchmarkDataset("million", /*scale=*/0.002);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_TRUE(ds->Validate().ok());
  EXPECT_EQ(ds->num_users, 2000);
  EXPECT_EQ(ds->num_items, 200);
  EXPECT_GT(ds->interactions.size(), 0u);
}

}  // namespace
}  // namespace logirec::data
