// Property tests of the temporal split over full synthetic datasets:
// fold disjointness, temporal ordering, and fraction bounds must hold for
// every user on every preset.

#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace logirec::data {
namespace {

class SplitPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SplitPropertyTest, FoldsPartitionEachUsersItems) {
  auto ds = GenerateBenchmarkDataset(GetParam(), 0.4);
  ASSERT_TRUE(ds.ok());
  const Split split = TemporalSplit(*ds);

  // Per-user interaction counts from the raw data.
  std::vector<int> counts(ds->num_users, 0);
  for (const Interaction& x : ds->interactions) ++counts[x.user];

  for (int u = 0; u < ds->num_users; ++u) {
    const size_t total = split.train[u].size() + split.validation[u].size() +
                         split.test[u].size();
    EXPECT_EQ(static_cast<int>(total), counts[u]) << "user " << u;

    // Disjointness across folds (items are unique per user by
    // construction of the generator).
    std::set<int> seen(split.train[u].begin(), split.train[u].end());
    for (int v : split.validation[u]) {
      EXPECT_TRUE(seen.insert(v).second) << "val dup for user " << u;
    }
    for (int v : split.test[u]) {
      EXPECT_TRUE(seen.insert(v).second) << "test dup for user " << u;
    }
  }
}

TEST_P(SplitPropertyTest, TrainPrecedesValidationPrecedesTest) {
  auto ds = GenerateBenchmarkDataset(GetParam(), 0.4);
  ASSERT_TRUE(ds.ok());
  const Split split = TemporalSplit(*ds);

  // Timestamp lookup per (user, item).
  std::map<std::pair<int, int>, long> ts;
  for (const Interaction& x : ds->interactions) ts[{x.user, x.item}] = x.timestamp;

  for (int u = 0; u < ds->num_users; ++u) {
    long max_train = -1;
    for (int v : split.train[u]) {
      max_train = std::max(max_train, ts.at({u, v}));
    }
    for (int v : split.validation[u]) {
      EXPECT_GT(ts.at({u, v}), max_train) << "user " << u;
    }
    long max_val = max_train;
    for (int v : split.validation[u]) {
      max_val = std::max(max_val, ts.at({u, v}));
    }
    for (int v : split.test[u]) {
      EXPECT_GT(ts.at({u, v}), max_val) << "user " << u;
    }
  }
}

TEST_P(SplitPropertyTest, FractionsApproximatelyRespected) {
  auto ds = GenerateBenchmarkDataset(GetParam(), 0.4);
  ASSERT_TRUE(ds.ok());
  const Split split = TemporalSplit(*ds, 0.6, 0.2);
  long train = 0, val = 0, test = 0;
  for (int u = 0; u < ds->num_users; ++u) {
    train += split.train[u].size();
    val += split.validation[u].size();
    test += split.test[u].size();
  }
  const double total = static_cast<double>(train + val + test);
  EXPECT_NEAR(train / total, 0.6, 0.08);
  EXPECT_NEAR(val / total, 0.2, 0.08);
  EXPECT_NEAR(test / total, 0.2, 0.08);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, SplitPropertyTest,
                         ::testing::Values("ciao", "cd", "clothing",
                                           "book"));

}  // namespace
}  // namespace logirec::data
