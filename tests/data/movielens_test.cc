#include "data/movielens.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace logirec::data {
namespace {

class MovieLensTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_movielens_test";
    std::filesystem::create_directories(dir_);
    ratings_ = dir_ + "/ratings.dat";
    items_ = dir_ + "/movies.dat";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }

  std::string dir_, ratings_, items_;
};

TEST_F(MovieLensTest, LoadsAndFilters) {
  WriteFile(items_,
            "1::Toy Story::Animation|Comedy\n"
            "2::Heat::Action|Crime\n"
            "3::Casino::Crime|Drama\n"
            "9::NoGenre::(no genres listed)\n");
  // user 10 has 3 positives (>= threshold 4), user 20 only 1 (dropped by
  // min_interactions=2), user 30 has low ratings only (dropped).
  WriteFile(ratings_,
            "10::1::5::100\n"
            "10::2::4::200\n"
            "10::3::4.5::300\n"
            "20::1::5::400\n"
            "30::2::2::500\n"
            "30::3::1::600\n");
  MovieLensOptions options;
  options.min_interactions = 2;
  auto ds = LoadMovieLens(ratings_, items_, options);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_items, 4);
  EXPECT_EQ(ds->num_users, 1);  // only user 10 survives
  EXPECT_EQ(ds->interactions.size(), 3u);
  // Genres: Animation, Comedy, Action, Crime, Drama = 5 tags; the
  // placeholder genre is skipped.
  EXPECT_EQ(ds->taxonomy.num_tags(), 5);
  EXPECT_TRUE(ds->item_tags[3].empty());
  // Item 0 (Toy Story) carries Animation + Comedy.
  EXPECT_EQ(ds->item_tags[0].size(), 2u);
  EXPECT_EQ(ds->taxonomy.tag(ds->item_tags[0][0]).name, "Animation");
}

TEST_F(MovieLensTest, RatingThresholdIsRespected) {
  WriteFile(items_, "1::A::X\n2::B::Y\n");
  WriteFile(ratings_,
            "1::1::3::1\n1::2::3::2\n1::1::5::3\n1::2::5::4\n"
            "1::1::4::5\n");
  MovieLensOptions options;
  options.positive_threshold = 4.0;
  options.min_interactions = 1;
  auto ds = LoadMovieLens(ratings_, items_, options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->interactions.size(), 3u);  // the two 5s and the 4
}

TEST_F(MovieLensTest, CustomSeparator) {
  WriteFile(items_, "1\tA\tX|Y\n");
  WriteFile(ratings_, "7\t1\t5\t11\n7\t1\t5\t12\n");
  MovieLensOptions options;
  options.separator = "\t";
  options.min_interactions = 1;
  auto ds = LoadMovieLens(ratings_, items_, options);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_users, 1);
  EXPECT_EQ(ds->taxonomy.num_tags(), 2);
}

TEST_F(MovieLensTest, MissingFilesFail) {
  EXPECT_FALSE(LoadMovieLens(dir_ + "/none", dir_ + "/none2").ok());
  WriteFile(items_, "1::A::X\n");
  EXPECT_FALSE(LoadMovieLens(dir_ + "/none", items_).ok());
}

TEST_F(MovieLensTest, MalformedRowsFail) {
  WriteFile(items_, "1::OnlyTwoFields\n");
  WriteFile(ratings_, "1::1::5::1\n");
  EXPECT_FALSE(LoadMovieLens(ratings_, items_).ok());

  WriteFile(items_, "1::A::X\n");
  WriteFile(ratings_, "1::1::five::1\n");
  EXPECT_FALSE(LoadMovieLens(ratings_, items_).ok());
}

TEST_F(MovieLensTest, DuplicateItemIdsFail) {
  WriteFile(items_, "1::A::X\n1::B::Y\n");
  WriteFile(ratings_, "1::1::5::1\n");
  auto ds = LoadMovieLens(ratings_, items_);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace logirec::data
