#include "data/taxonomy.h"

#include <gtest/gtest.h>

namespace logirec::data {
namespace {

Taxonomy MusicTaxonomy() {
  Taxonomy t;
  const int rock = t.AddTag("Rock");            // 0, level 1
  const int classical = t.AddTag("Classical");  // 1, level 1
  const int punk = t.AddTag("Punk Rock", rock);        // 2, level 2
  t.AddTag("Alternative Rock", rock);                  // 3, level 2
  t.AddTag("Opera", classical);                        // 4, level 2
  t.AddTag("Ska Punk", punk);                          // 5, level 3
  return t;
}

TEST(TaxonomyTest, LevelsFollowParents) {
  const Taxonomy t = MusicTaxonomy();
  EXPECT_EQ(t.num_tags(), 6);
  EXPECT_EQ(t.num_levels(), 3);
  EXPECT_EQ(t.tag(0).level, 1);
  EXPECT_EQ(t.tag(2).level, 2);
  EXPECT_EQ(t.tag(5).level, 3);
}

TEST(TaxonomyTest, TagsAtLevelAndLeaves) {
  const Taxonomy t = MusicTaxonomy();
  EXPECT_EQ(t.TagsAtLevel(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(t.TagsAtLevel(2), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(t.Leaves(), (std::vector<int>{3, 4, 5}));
}

TEST(TaxonomyTest, AncestorsNearestFirst) {
  const Taxonomy t = MusicTaxonomy();
  EXPECT_EQ(t.Ancestors(5), (std::vector<int>{2, 0}));
  EXPECT_TRUE(t.Ancestors(0).empty());
}

TEST(TaxonomyTest, IsAncestorOrSelf) {
  const Taxonomy t = MusicTaxonomy();
  EXPECT_TRUE(t.IsAncestorOrSelf(0, 5));
  EXPECT_TRUE(t.IsAncestorOrSelf(5, 5));
  EXPECT_FALSE(t.IsAncestorOrSelf(1, 5));
  EXPECT_FALSE(t.IsAncestorOrSelf(5, 0));
}

TEST(TaxonomyTest, HierarchyPairsAreAllEdges) {
  const Taxonomy t = MusicTaxonomy();
  const auto pairs = t.HierarchyPairs();
  EXPECT_EQ(pairs.size(), 4u);  // 4 non-root tags
  bool found = false;
  for (const auto& p : pairs) {
    if (p.parent == 2 && p.child == 5) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TaxonomyTest, ExclusionsAreSameParentSiblings) {
  const Taxonomy t = MusicTaxonomy();
  const std::vector<std::vector<int>> no_items;
  const auto ex = t.ExclusionPairs(no_items);
  // Expected: (Rock, Classical) under the virtual root,
  // (Punk, Alternative) under Rock. Opera has no sibling.
  ASSERT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex[0].a, 0);
  EXPECT_EQ(ex[0].b, 1);
  EXPECT_EQ(ex[0].level, 1);
  EXPECT_EQ(ex[1].a, 2);
  EXPECT_EQ(ex[1].b, 3);
  EXPECT_EQ(ex[1].level, 2);
}

TEST(TaxonomyTest, CooccurrenceSuppressesExclusion) {
  const Taxonomy t = MusicTaxonomy();
  // One item tagged with both Punk Rock and Alternative Rock — the
  // "common child" evidence that kills the sibling exclusion.
  const std::vector<std::vector<int>> item_tags = {{2, 3}};
  const auto ex = t.ExclusionPairs(item_tags);
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].a, 0);  // only the top-level pair survives
}

TEST(TaxonomyTest, OverlapToleranceRestoresExclusion) {
  const Taxonomy t = MusicTaxonomy();
  const std::vector<std::vector<int>> item_tags = {{2, 3}};
  // With tolerance 1, a single co-occurrence is treated as noise.
  const auto ex = t.ExclusionPairs(item_tags, /*overlap_tolerance=*/1);
  EXPECT_EQ(ex.size(), 2u);
}

TEST(TaxonomyTest, FindByName) {
  const Taxonomy t = MusicTaxonomy();
  EXPECT_EQ(t.FindByName("Opera"), 4);
  EXPECT_EQ(t.FindByName("Jazz"), -1);
}

}  // namespace
}  // namespace logirec::data
