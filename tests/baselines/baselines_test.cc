#include "baselines/model_zoo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace logirec::baselines {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::Split split;

  Fixture() {
    data::SyntheticConfig config;
    config.name = "cd-mini";
    config.num_users = 120;
    config.num_items = 150;
    config.seed = 9;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

core::TrainConfig FastConfig() {
  core::TrainConfig config;
  config.dim = 16;
  config.layers = 2;
  config.epochs = 30;
  return config;
}

TEST(ModelZooTest, UnknownNameFails) {
  auto model = MakeModel("SVD++", FastConfig());
  EXPECT_FALSE(model.ok());
}

TEST(ModelZooTest, NameListsAreConsistent) {
  EXPECT_EQ(BaselineNames().size(), 13u);
  EXPECT_EQ(AllModelNames().size(), 15u);
  EXPECT_EQ(AllModelNames().back(), "LogiRec++");
}

TEST(ModelZooTest, ReportedNamesMatchRegistry) {
  for (const std::string& name : AllModelNames()) {
    auto model = MakeModel(name, FastConfig());
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ((*model)->name(), name);
  }
}

class EveryModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryModelTest, TrainsScoresAndBeatsRandom) {
  Fixture fx;
  auto model = MakeModel(GetParam(), FastConfig());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(fx.dataset, fx.split).ok());

  std::vector<double> scores;
  (*model)->ScoreItems(0, &scores);
  ASSERT_EQ(static_cast<int>(scores.size()), fx.dataset.num_items);
  for (double s : scores) ASSERT_TRUE(std::isfinite(s)) << GetParam();

  eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
  const auto result = evaluator.Evaluate(**model);
  // Uniform-random recall@20 on 150 items is ~13% of a 20/150 chance per
  // truth item — every trained model must clear 3%.
  EXPECT_GT(result.Get("Recall@20"), 3.0) << GetParam();
}

TEST_P(EveryModelTest, DeterministicInSeed) {
  Fixture fx;
  auto a = MakeModel(GetParam(), FastConfig());
  auto b = MakeModel(GetParam(), FastConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Fit(fx.dataset, fx.split).ok());
  ASSERT_TRUE((*b)->Fit(fx.dataset, fx.split).ok());
  std::vector<double> sa, sb;
  (*a)->ScoreItems(5, &sa);
  (*b)->ScoreItems(5, &sb);
  EXPECT_EQ(sa, sb) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EveryModelTest,
    ::testing::ValuesIn(AllModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace logirec::baselines
