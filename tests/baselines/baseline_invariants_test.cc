// Model-specific invariants of the baseline implementations, beyond the
// shared beats-random check in baselines_test.cc.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "hyper/lorentz.h"

namespace logirec::baselines {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::Split split;
  Fixture() {
    data::SyntheticConfig config;
    config.num_users = 90;
    config.num_items = 110;
    config.seed = 21;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

core::TrainConfig FastConfig() {
  core::TrainConfig config;
  config.dim = 16;
  config.layers = 2;
  config.epochs = 20;
  return config;
}

TEST(BaselineInvariantsTest, HgcfEmbeddingsLieOnHyperboloid) {
  Fixture fx;
  auto model = MakeModel("HGCF", FastConfig());
  ASSERT_TRUE((*model)->Fit(fx.dataset, fx.split).ok());
  const math::Matrix* items = (*model)->ItemEmbeddings();
  ASSERT_NE(items, nullptr);
  EXPECT_EQ((*model)->item_space(),
            core::Recommender::ItemSpace::kLorentz);
  for (int v = 0; v < items->rows(); ++v) {
    EXPECT_NEAR(hyper::LorentzDot(items->Row(v), items->Row(v)), -1.0, 1e-6);
  }
}

TEST(BaselineInvariantsTest, MoreEpochsDoNotCollapseScores) {
  // Training longer must keep scores finite and quality above random —
  // guards against the norm-explosion collapse mode of metric models.
  Fixture fx;
  for (const char* name : {"HGCF", "HRCF", "HyperML", "CML"}) {
    core::TrainConfig config = FastConfig();
    config.epochs = 60;
    auto model = MakeModel(name, config);
    ASSERT_TRUE((*model)->Fit(fx.dataset, fx.split).ok()) << name;
    eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
    const double recall = evaluator.Evaluate(**model).Get("Recall@20");
    EXPECT_GT(recall, 3.0) << name << " collapsed after long training";
  }
}

TEST(BaselineInvariantsTest, TagAwareModelsUseTagInformation) {
  // Stripping all tags must not *help* the tag-aware models; on this
  // taxonomy-clustered data it should hurt (or at worst tie) each of
  // AMF / CMLF / AGCN on average.
  Fixture fx;
  data::Dataset untagged = fx.dataset;
  for (auto& tags : untagged.item_tags) tags.clear();

  double with_tags_total = 0.0, without_tags_total = 0.0;
  eval::Evaluator evaluator(&fx.split, fx.dataset.num_items);
  core::TrainConfig config = FastConfig();
  config.epochs = 50;  // let the tag pathways mature
  for (const char* name : {"AMF", "CMLF", "AGCN"}) {
    auto tagged_model = MakeModel(name, config);
    ASSERT_TRUE((*tagged_model)->Fit(fx.dataset, fx.split).ok());
    with_tags_total += evaluator.Evaluate(**tagged_model).Get("Recall@20");

    auto untagged_model = MakeModel(name, config);
    ASSERT_TRUE((*untagged_model)->Fit(untagged, fx.split).ok());
    without_tags_total +=
        evaluator.Evaluate(**untagged_model).Get("Recall@20");
  }
  // Tags are a small fixture-level signal; the guard is against the
  // fusion pathway actively *hurting* (a wiring bug would).
  EXPECT_GE(with_tags_total, without_tags_total * 0.9);
}

TEST(BaselineInvariantsTest, NeumfProbabilitiesAreWellFormedLogits) {
  Fixture fx;
  auto model = MakeModel("NeuMF", FastConfig());
  ASSERT_TRUE((*model)->Fit(fx.dataset, fx.split).ok());
  std::vector<double> scores;
  (*model)->ScoreItems(3, &scores);
  // Logits must be finite and not constant (a constant output means the
  // towers learned nothing).
  double mn = scores[0], mx = scores[0];
  for (double s : scores) {
    ASSERT_TRUE(std::isfinite(s));
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_GT(mx - mn, 1e-6);
}

TEST(BaselineInvariantsTest, ZooModelsIgnoreUnusedKnobsGracefully) {
  // Models that do not read lambda/layers must still train when those are
  // set to unusual values.
  Fixture fx;
  core::TrainConfig config = FastConfig();
  config.lambda = 9.0;
  config.layers = 4;
  for (const char* name : {"BPRMF", "CML", "TransC", "GDCF"}) {
    auto model = MakeModel(name, config);
    ASSERT_TRUE((*model)->Fit(fx.dataset, fx.split).ok()) << name;
  }
}

}  // namespace
}  // namespace logirec::baselines
