#include "math/kernels.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "hyper/lorentz.h"
#include "hyper/poincare.h"
#include "math/vec.h"
#include "util/rng.h"

namespace logirec::math {
namespace {

constexpr int kItems = 97;  // deliberately not a multiple of any block size
constexpr int kDim = 13;

/// Random Euclidean item matrix + user row.
struct EuclideanFixture {
  Matrix items{kItems, kDim};
  Vec user = Vec(kDim);

  explicit EuclideanFixture(uint64_t seed) {
    Rng rng(seed);
    items.FillGaussian(&rng, 1.0);
    for (double& x : user) x = rng.Gaussian(0.0, 1.0);
  }
};

/// Rows projected onto the Lorentz hyperboloid ((d+1)-dimensional).
struct LorentzFixture {
  Matrix items{kItems, kDim + 1};
  Vec user = Vec(kDim + 1);

  explicit LorentzFixture(uint64_t seed) {
    Rng rng(seed);
    items.FillGaussian(&rng, 0.5);
    for (int v = 0; v < items.rows(); ++v) {
      hyper::ProjectToHyperboloid(items.Row(v));
    }
    for (double& x : user) x = rng.Gaussian(0.0, 0.5);
    hyper::ProjectToHyperboloid(Span(user));
  }
};

/// Rows scaled strictly into the Poincaré unit ball.
struct PoincareFixture {
  Matrix items{kItems, kDim};
  Vec user = Vec(kDim);

  explicit PoincareFixture(uint64_t seed) {
    Rng rng(seed);
    items.FillGaussian(&rng, 1.0);
    for (int v = 0; v < items.rows(); ++v) {
      auto row = items.Row(v);
      ClipNorm(row, 0.9);
    }
    for (double& x : user) x = rng.Gaussian(0.0, 1.0);
    ClipNorm(Span(user), 0.9);
  }
};

TEST(KernelsTest, DotsMatchScalarBitExactly) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    EuclideanFixture fx(seed);
    Vec out(kItems);
    DotsInto(fx.user, fx.items, Span(out));
    for (int v = 0; v < kItems; ++v) {
      EXPECT_EQ(out[v], Dot(fx.user, fx.items.Row(v))) << "item " << v;
    }
  }
}

TEST(KernelsTest, NegSquaredEuclideanMatchesScalarBitExactly) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    EuclideanFixture fx(seed);
    Vec out(kItems);
    NegSquaredEuclideanDistancesInto(fx.user, fx.items, Span(out));
    for (int v = 0; v < kItems; ++v) {
      EXPECT_EQ(out[v], -SquaredDistance(fx.user, fx.items.Row(v)));
    }
  }
}

TEST(KernelsTest, NegEuclideanMatchesScalarBitExactly) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    EuclideanFixture fx(seed);
    Vec out(kItems);
    NegEuclideanDistancesInto(fx.user, fx.items, Span(out));
    for (int v = 0; v < kItems; ++v) {
      EXPECT_EQ(out[v], -Distance(fx.user, fx.items.Row(v)));
    }
  }
}

TEST(KernelsTest, LorentzDotsMatchScalarBitExactly) {
  for (uint64_t seed : {10u, 11u, 12u}) {
    LorentzFixture fx(seed);
    Vec out(kItems);
    LorentzDotsInto(fx.user, fx.items, Span(out));
    for (int v = 0; v < kItems; ++v) {
      EXPECT_EQ(out[v], hyper::LorentzDot(fx.user, fx.items.Row(v)));
    }
  }
}

TEST(KernelsTest, NegLorentzDistancesMatchScalarBitExactly) {
  for (uint64_t seed : {13u, 14u, 15u}) {
    LorentzFixture fx(seed);
    Vec out(kItems);
    NegLorentzDistancesInto(fx.user, fx.items, Span(out));
    for (int v = 0; v < kItems; ++v) {
      EXPECT_EQ(out[v], -hyper::LorentzDistance(fx.user, fx.items.Row(v)));
    }
  }
}

TEST(KernelsTest, NegPoincareDistancesMatchScalarBitExactly) {
  for (uint64_t seed : {16u, 17u, 18u}) {
    PoincareFixture fx(seed);
    Vec out(kItems);
    NegPoincareDistancesInto(fx.user, fx.items, Span(out));
    for (int v = 0; v < kItems; ++v) {
      EXPECT_EQ(out[v], -hyper::PoincareDistance(fx.user, fx.items.Row(v)));
    }
  }
}

/// Ranks item indices by a score vector with the evaluator's tie-break
/// (higher score first, smaller id wins ties).
std::vector<int> RankAll(const Vec& scores) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](int a, int b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}

TEST(KernelsTest, LorentzDotRanksIdenticallyToExactDistance) {
  for (uint64_t seed : {19u, 20u, 21u}) {
    LorentzFixture fx(seed);
    Vec exact(kItems), ranking(kItems);
    NegLorentzDistancesInto(fx.user, fx.items, Span(exact));
    LorentzDotsInto(fx.user, fx.items, Span(ranking));
    EXPECT_EQ(RankAll(exact), RankAll(ranking));
  }
}

TEST(KernelsTest, PoincareGammaRanksIdenticallyToExactDistance) {
  for (uint64_t seed : {22u, 23u, 24u}) {
    PoincareFixture fx(seed);
    Vec exact(kItems), ranking(kItems);
    NegPoincareDistancesInto(fx.user, fx.items, Span(exact));
    NegPoincareGammasInto(fx.user, fx.items, Span(ranking));
    EXPECT_EQ(RankAll(exact), RankAll(ranking));
  }
}

/// Every transposed (ScoringView) kernel must be bit-identical to its
/// row-major counterpart — the column-major walk changes the loop nest,
/// not any item's accumulation order.
TEST(ScoringViewTest, TransposedKernelsMatchRowMajorBitExactly) {
  for (uint64_t seed : {26u, 27u, 28u}) {
    EuclideanFixture eu(seed);
    ScoringView eu_view;
    eu_view.Assign(eu.items);
    ASSERT_EQ(eu_view.items(), kItems);
    ASSERT_EQ(eu_view.dim(), kDim);
    Vec row_major(kItems), transposed(kItems);

    DotsInto(eu.user, eu.items, Span(row_major));
    DotsInto(eu.user, eu_view, Span(transposed));
    EXPECT_EQ(row_major, transposed);

    NegSquaredEuclideanDistancesInto(eu.user, eu.items, Span(row_major));
    NegSquaredEuclideanDistancesInto(eu.user, eu_view, Span(transposed));
    EXPECT_EQ(row_major, transposed);

    NegEuclideanDistancesInto(eu.user, eu.items, Span(row_major));
    NegEuclideanDistancesInto(eu.user, eu_view, Span(transposed));
    EXPECT_EQ(row_major, transposed);

    LorentzFixture lo(seed);
    ScoringView lo_view;
    lo_view.Assign(lo.items);

    LorentzDotsInto(lo.user, lo.items, Span(row_major));
    LorentzDotsInto(lo.user, lo_view, Span(transposed));
    EXPECT_EQ(row_major, transposed);

    NegLorentzDistancesInto(lo.user, lo.items, Span(row_major));
    NegLorentzDistancesInto(lo.user, lo_view, Span(transposed));
    EXPECT_EQ(row_major, transposed);

    PoincareFixture po(seed);
    ScoringView po_view;
    po_view.Assign(po.items);

    NegPoincareDistancesInto(po.user, po.items, Span(row_major));
    NegPoincareDistancesInto(po.user, po_view, Span(transposed));
    EXPECT_EQ(row_major, transposed);

    NegPoincareGammasInto(po.user, po.items, Span(row_major));
    NegPoincareGammasInto(po.user, po_view, Span(transposed));
    EXPECT_EQ(row_major, transposed);
  }
}

TEST(ScoringViewTest, ReassignTracksNewContents) {
  EuclideanFixture a(40), b(41);
  ScoringView view;
  view.Assign(a.items);
  Vec expect(kItems), got(kItems);
  view.Assign(b.items);  // must fully replace the old snapshot
  DotsInto(b.user, b.items, Span(expect));
  DotsInto(b.user, view, Span(got));
  EXPECT_EQ(expect, got);
}

TEST(KernelsTest, RankingSurrogatesPreserveExactTies) {
  // Duplicate rows produce exactly equal scores in both modes, so the
  // id tie-break must kick in identically.
  LorentzFixture fx(25);
  for (int v = 1; v < kItems; v += 2) {
    Copy(fx.items.Row(v - 1), fx.items.Row(v));
  }
  Vec exact(kItems), ranking(kItems);
  NegLorentzDistancesInto(fx.user, fx.items, Span(exact));
  LorentzDotsInto(fx.user, fx.items, Span(ranking));
  EXPECT_EQ(RankAll(exact), RankAll(ranking));
}

}  // namespace
}  // namespace logirec::math
