#include "math/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace logirec::math {
namespace {

TEST(RunningStatTest, MatchesBatchFormulas) {
  RunningStat stat;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stat.Add(x);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.stddev(), StdDev(xs), 1e-12);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat stat;
  stat.Add(3.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(MeanStdTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 3.0}), 2.0);
  EXPECT_NEAR(StdDev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSideGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SpearmanTest, MonotonicNonlinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace logirec::math
