#include "math/mlp.h"

#include <gtest/gtest.h>

#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::math {
namespace {

using testing::ExpectGradientsClose;
using testing::NumericalGradient;

TEST(MlpTest, ShapesAndParameterCount) {
  Rng rng(1);
  Mlp mlp({4, 8, 2}, Activation::kRelu, &rng);
  EXPECT_EQ(mlp.input_dim(), 4);
  EXPECT_EQ(mlp.output_dim(), 2);
  EXPECT_EQ(mlp.ParameterCount(), 4 * 8 + 8 + 8 * 2 + 2);
  const Vec out = mlp.Forward(Vec{1.0, 0.5, -0.5, 0.0});
  EXPECT_EQ(out.size(), 2u);
}

TEST(MlpTest, InferMatchesForward) {
  Rng rng(2);
  Mlp mlp({3, 5, 1}, Activation::kTanh, &rng);
  const Vec in{0.3, -0.7, 0.1};
  EXPECT_EQ(mlp.Forward(in), mlp.Infer(in));
}

class MlpGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(MlpGradTest, InputGradientMatchesFiniteDifference) {
  Rng rng(3);
  Mlp mlp({4, 6, 1}, GetParam(), &rng);
  const Vec in{0.3, -0.2, 0.5, 0.9};
  mlp.Forward(in);
  const Vec grad_in = mlp.Backward(Vec{1.0});
  mlp.ZeroGrad();
  const auto f = [&](const std::vector<double>& x) {
    return mlp.Infer(x)[0];
  };
  ExpectGradientsClose(grad_in, NumericalGradient(f, in), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, MlpGradTest,
                         ::testing::Values(Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kSigmoid));

TEST(MlpTest, SgdFitsLinearTarget) {
  Rng rng(4);
  Mlp mlp({2, 8, 1}, Activation::kTanh, &rng);
  // Fit y = x0 - 2 x1 with squared loss.
  double final_loss = 0.0;
  for (int step = 0; step < 4000; ++step) {
    const Vec x{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    const double target = x[0] - 2.0 * x[1];
    const double pred = mlp.Forward(x)[0];
    const double err = pred - target;
    mlp.Backward(Vec{err});
    mlp.Step(0.05);
    final_loss = 0.9 * final_loss + 0.1 * err * err;
  }
  EXPECT_LT(final_loss, 0.05);
}

TEST(MlpTest, StepClearsGradients) {
  Rng rng(5);
  Mlp mlp({2, 3, 1}, Activation::kRelu, &rng);
  mlp.Forward(Vec{1.0, 1.0});
  mlp.Backward(Vec{1.0});
  mlp.Step(0.01);
  // A second Step with no new Backward must not change weights.
  const double before = mlp.Infer(Vec{1.0, 1.0})[0];
  mlp.Step(0.01);
  EXPECT_DOUBLE_EQ(mlp.Infer(Vec{1.0, 1.0})[0], before);
}

}  // namespace
}  // namespace logirec::math
