// Compact-kernel equivalence suite: the f32 clones of the seven
// transposed scoring kernels against their f64 originals (pinned
// relative-error bounds — the quantitative form of the DESIGN.md §2i
// contract), int8 catalog quantization properties (idempotence,
// snapshot/resident code agreement, factorized-distance accuracy), and
// run-to-run determinism of the compact paths.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "math/compact.h"
#include "math/kernels.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "util/rng.h"

namespace logirec::math {
namespace {

constexpr int kItems = 257;  // odd, larger than any SIMD width multiple
constexpr int kDim = 19;

/// Clustered Gaussian rows, spatial scale ~0.5: the regime trained
/// embedding tables live in (scores O(1), no catastrophic cancellation).
Matrix RandomRows(int rows, int cols, uint64_t seed, double scale) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m.At(r, c) = scale * rng.Gaussian();
  }
  return m;
}

/// Lifts rows onto the Lorentz hyperboloid: x0 = sqrt(1 + ||x_s||^2).
void LiftToHyperboloid(Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    double sq = 0.0;
    for (int c = 1; c < m->cols(); ++c) sq += m->At(r, c) * m->At(r, c);
    m->At(r, 0) = std::sqrt(1.0 + sq);
  }
}

/// Scales rows into the Poincare ball (norm <= radius < 1).
void ShrinkToBall(Matrix* m, double radius) {
  for (int r = 0; r < m->rows(); ++r) {
    double sq = 0.0;
    for (int c = 0; c < m->cols(); ++c) sq += m->At(r, c) * m->At(r, c);
    const double f = radius / std::max(std::sqrt(sq), radius);
    for (int c = 0; c < m->cols(); ++c) m->At(r, c) *= f;
  }
}

VecF Narrow(ConstSpan v) {
  VecF out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = static_cast<float>(v[i]);
  return out;
}

using KernelF64 = void (*)(ConstSpan, const ScoringView&, Span);
using KernelF32 = void (*)(ConstSpanF, const ScoringViewF&, SpanF);
using KernelI8 = void (*)(ConstSpanF, const Int8Catalog&, SpanF);

struct KernelCase {
  const char* name;
  KernelF64 f64;
  KernelF32 f32;
  KernelI8 i8;
  bool hyperboloid = false;  // items/users must sit on the hyperboloid
  bool ball = false;         // items/users must sit inside the unit ball
  /// Pinned f32-vs-f64 relative error bound. Dots and squared distances
  /// accumulate <= dim float roundings (~dim * 2^-24 relative); the
  /// distance/acosh kernels add one transcendental evaluated in float.
  /// Bounds are ~10x slack over the worst case observed, pinned so a
  /// kernel edit that degrades accuracy (e.g. reassociating into a
  /// cancellation) fails loudly rather than shifting NDCG silently.
  double f32_rel_bound = 5e-5;
};

const KernelCase kCases[] = {
    {"Dots", &DotsInto, &DotsInto, &DotsInto, false, false, 5e-5},
    {"NegSquaredEuclidean", &NegSquaredEuclideanDistancesInto,
     &NegSquaredEuclideanDistancesInto, &NegSquaredEuclideanDistancesInto,
     false, false, 5e-5},
    {"NegEuclidean", &NegEuclideanDistancesInto, &NegEuclideanDistancesInto,
     &NegEuclideanDistancesInto, false, false, 5e-5},
    {"LorentzDots", &LorentzDotsInto, &LorentzDotsInto, &LorentzDotsInto,
     true, false, 2e-4},
    {"NegLorentzDistances", &NegLorentzDistancesInto,
     &NegLorentzDistancesInto, &NegLorentzDistancesInto, true, false, 2e-3},
    {"NegPoincareDistances", &NegPoincareDistancesInto,
     &NegPoincareDistancesInto, &NegPoincareDistancesInto, false, true, 2e-3},
    {"NegPoincareGammas", &NegPoincareGammasInto, &NegPoincareGammasInto,
     &NegPoincareGammasInto, false, true, 5e-5},
};

struct Geometry {
  Matrix items;
  Vec user;

  explicit Geometry(const KernelCase& kc, uint64_t seed) {
    items = RandomRows(kItems, kDim, seed, 0.5);
    Matrix users = RandomRows(1, kDim, seed ^ 0xabcdef, 0.5);
    if (kc.hyperboloid) {
      LiftToHyperboloid(&items);
      LiftToHyperboloid(&users);
    } else if (kc.ball) {
      ShrinkToBall(&items, 0.85);
      ShrinkToBall(&users, 0.85);
    }
    user.assign(users.Row(0).begin(), users.Row(0).end());
  }
};

class CompactKernelTest : public ::testing::TestWithParam<KernelCase> {};

/// The f32 clone tracks the f64 kernel within the pinned relative bound
/// for every item, across several seeds.
TEST_P(CompactKernelTest, F32MatchesF64WithinPinnedBound) {
  const KernelCase& kc = GetParam();
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Geometry g(kc, seed);
    ScoringView view;
    view.Assign(g.items);
    ScoringViewF view_f;
    view_f.Assign(view);

    Vec ref(kItems);
    kc.f64(ConstSpan(g.user), view, Span(ref));
    const VecF user_f = Narrow(ConstSpan(g.user));
    VecF got(kItems);
    kc.f32(ConstSpanF(user_f), view_f, SpanF(got));

    for (int v = 0; v < kItems; ++v) {
      const double denom = std::max(std::abs(ref[v]), 1.0);
      EXPECT_NEAR(got[v], ref[v], kc.f32_rel_bound * denom)
          << kc.name << " seed=" << seed << " item=" << v;
    }
  }
}

/// Int8 scores track f64 within the quantization budget. The per-row
/// symmetric scheme keeps coordinate error <= scale/2 ~ maxabs/254, so
/// relative score error is O(dim / 254) for O(1) coordinates — bound 0.1
/// is ~4x slack at dim 19.
TEST_P(CompactKernelTest, Int8MatchesF64WithinQuantizationBudget) {
  const KernelCase& kc = GetParam();
  Geometry g(kc, 7);
  ScoringView view;
  view.Assign(g.items);
  Int8Catalog catalog;
  catalog.Assign(view);

  Vec ref(kItems);
  kc.f64(ConstSpan(g.user), view, Span(ref));
  const VecF user_f = Narrow(ConstSpan(g.user));
  VecF got(kItems);
  kc.i8(ConstSpanF(user_f), catalog, SpanF(got));

  for (int v = 0; v < kItems; ++v) {
    const double denom = std::max(std::abs(ref[v]), 1.0);
    EXPECT_NEAR(got[v], ref[v], 0.1 * denom) << kc.name << " item=" << v;
  }
}

/// Same view, same query, two calls: bit-identical output (the
/// determinism-per-precision contract; no FMA-vs-scalar divergence, no
/// run-to-run reassociation).
TEST_P(CompactKernelTest, F32IsBitDeterministic) {
  const KernelCase& kc = GetParam();
  Geometry g(kc, 11);
  ScoringViewF view_f;
  ScoringView view;
  view.Assign(g.items);
  view_f.Assign(view);
  const VecF user_f = Narrow(ConstSpan(g.user));
  VecF a(kItems), b(kItems);
  kc.f32(ConstSpanF(user_f), view_f, SpanF(a));
  kc.f32(ConstSpanF(user_f), view_f, SpanF(b));
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), sizeof(float) * kItems))
      << kc.name;
}

/// Narrowing through a rebuilt view (Matrix -> f64 view -> f32 view vs
/// Matrix -> f32 view) lands on identical floats: Assign narrows each
/// coordinate once, with no double-rounding asymmetry between paths.
TEST_P(CompactKernelTest, F32ViewPathsAgree) {
  const KernelCase& kc = GetParam();
  Geometry g(kc, 13);
  ScoringView view;
  view.Assign(g.items);
  ScoringViewF from_view, from_matrix;
  from_view.Assign(view);
  from_matrix.Assign(g.items);
  ASSERT_EQ(from_view.items(), from_matrix.items());
  for (int k = 0; k < from_view.dim(); ++k) {
    EXPECT_EQ(0, std::memcmp(from_view.Col(k), from_matrix.Col(k),
                             sizeof(float) * kItems))
        << kc.name << " col=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, CompactKernelTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return std::string(info.param.name);
    });

TEST(Int8CatalogTest, QuantizationIsIdempotent) {
  const Matrix items = RandomRows(64, kDim, 3, 0.5);
  Int8Catalog first;
  first.Assign(items);

  // Dequantize into a matrix, requantize, and compare codes and scales.
  Matrix deq(64, kDim);
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < kDim; ++c) {
      deq.At(r, c) =
          static_cast<double>(first.Scales()[r]) * first.Col(c)[r];
    }
  }
  Int8Catalog second;
  second.Assign(deq);
  for (int r = 0; r < 64; ++r) {
    EXPECT_EQ(first.Scales()[r], second.Scales()[r]) << "row " << r;
  }
  for (int c = 0; c < kDim; ++c) {
    EXPECT_EQ(0, std::memcmp(first.Col(c), second.Col(c), 64)) << "col " << c;
  }
}

TEST(Int8CatalogTest, QuantizeRowMatchesCatalogAssign) {
  const Matrix items = RandomRows(32, kDim, 5, 0.5);
  Int8Catalog catalog;
  catalog.Assign(items);
  std::vector<int8_t> codes(kDim);
  for (int r = 0; r < 32; ++r) {
    const float scale = QuantizeInt8Row(items.Row(r), codes.data());
    EXPECT_EQ(scale, catalog.Scales()[r]) << "row " << r;
    for (int c = 0; c < kDim; ++c) {
      EXPECT_EQ(codes[c], catalog.Col(c)[r]) << "row " << r << " col " << c;
    }
  }
}

TEST(Int8CatalogTest, MaxMagnitudeCoordinateHitsFullScale) {
  Matrix items(1, 4);
  items.At(0, 0) = -2.0;
  items.At(0, 1) = 1.0;
  items.At(0, 2) = 0.5;
  items.At(0, 3) = 0.0;
  Int8Catalog catalog;
  catalog.Assign(items);
  EXPECT_EQ(-127, catalog.Col(0)[0]);
  EXPECT_FLOAT_EQ(2.0f / 127.0f, catalog.Scales()[0]);
  EXPECT_EQ(0, catalog.Col(3)[0]);
}

TEST(Int8CatalogTest, AllZeroRowHasZeroScaleAndCodes) {
  Matrix items(2, 3);  // row 0 all zero, row 1 nonzero
  items.At(1, 0) = 1.0;
  Int8Catalog catalog;
  catalog.Assign(items);
  EXPECT_EQ(0.0f, catalog.Scales()[0]);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(0, catalog.Col(c)[0]);
  EXPECT_GT(catalog.Scales()[1], 0.0f);

  // Scoring against the zero row is exactly zero, not NaN.
  VecF user = {1.0f, 2.0f, 3.0f};
  VecF out(2);
  DotsInto(ConstSpanF(user), catalog, SpanF(out));
  EXPECT_EQ(0.0f, out[0]);
}

TEST(Int8CatalogTest, ResidentBytesReflectOneBytePerCoordinate) {
  const Matrix items = RandomRows(100, 16, 9, 0.5);
  Int8Catalog catalog;
  catalog.Assign(items);
  // 100*16 codes + 100 scales + 100 norms.
  EXPECT_EQ(100 * 16 * sizeof(int8_t) + 200 * sizeof(float),
            catalog.ResidentBytes());
  ScoringViewF view_f;
  view_f.Assign(items);
  EXPECT_LT(catalog.ResidentBytes(), view_f.ResidentBytes());
}

}  // namespace
}  // namespace logirec::math
