#include "math/vec.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/matrix.h"

namespace logirec::math {
namespace {

TEST(VecTest, DotAndNorms) {
  const Vec a{1.0, 2.0, 3.0};
  const Vec b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(a), 14.0);
  EXPECT_DOUBLE_EQ(Norm(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 9.0 + 49.0 + 9.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::sqrt(67.0));
}

TEST(VecTest, Arithmetic) {
  const Vec a{1.0, 2.0};
  const Vec b{3.0, 5.0};
  EXPECT_EQ(Add(a, b), (Vec{4.0, 7.0}));
  EXPECT_EQ(Sub(b, a), (Vec{2.0, 3.0}));
  EXPECT_EQ(Scale(a, -2.0), (Vec{-2.0, -4.0}));
}

TEST(VecTest, AxpyAccumulates) {
  Vec dst{1.0, 1.0};
  const Vec src{2.0, 3.0};
  Axpy(0.5, src, Span(dst));
  EXPECT_EQ(dst, (Vec{2.0, 2.5}));
}

TEST(VecTest, InPlaceOps) {
  Vec v{2.0, 4.0};
  ScaleInPlace(Span(v), 0.5);
  EXPECT_EQ(v, (Vec{1.0, 2.0}));
  Zero(Span(v));
  EXPECT_EQ(v, (Vec{0.0, 0.0}));
  const Vec src{7.0, 8.0};
  Copy(src, Span(v));
  EXPECT_EQ(v, src);
}

TEST(VecTest, ClipNorm) {
  Vec v{3.0, 4.0};
  const double original = ClipNorm(Span(v), 1.0);
  EXPECT_DOUBLE_EQ(original, 5.0);
  EXPECT_NEAR(Norm(v), 1.0, 1e-12);
  Vec small{0.1, 0.0};
  ClipNorm(Span(small), 1.0);
  EXPECT_EQ(small, (Vec{0.1, 0.0}));
}

TEST(VecTest, SafeAcoshHandlesBoundary) {
  EXPECT_DOUBLE_EQ(SafeAcosh(1.0), SafeAcosh(0.5));  // both clamp to 1+eps
  EXPECT_NEAR(SafeAcosh(2.0), std::acosh(2.0), 1e-12);
  EXPECT_TRUE(std::isfinite(SafeAcoshGrad(1.0)));
  EXPECT_NEAR(SafeAcoshGrad(3.0), 1.0 / std::sqrt(8.0), 1e-12);
}

TEST(MatrixTest, RowAccessAndFill) {
  Matrix m(3, 2, 1.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 1.5);
  m.Row(1)[0] = 9.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 9.0);
  m.Fill(0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

TEST(MatrixTest, GaussianFillIsSeeded) {
  Rng r1(5), r2(5);
  Matrix a(4, 4), b(4, 4);
  a.FillGaussian(&r1, 1.0);
  b.FillGaussian(&r2, 1.0);
  EXPECT_EQ(a.data(), b.data());
}

}  // namespace
}  // namespace logirec::math
