#ifndef LOGIREC_TESTS_TESTING_GRADCHECK_H_
#define LOGIREC_TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "math/vec.h"

namespace logirec::testing {

/// Central finite difference of a scalar function at `x`.
inline std::vector<double> NumericalGradient(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, double eps = 1e-6) {
  std::vector<double> grad(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double orig = x[i];
    x[i] = orig + eps;
    const double fp = f(x);
    x[i] = orig - eps;
    const double fm = f(x);
    x[i] = orig;
    grad[i] = (fp - fm) / (2.0 * eps);
  }
  return grad;
}

/// Expects two gradients to agree within a mixed absolute/relative bound.
inline void ExpectGradientsClose(const std::vector<double>& analytic,
                                 const std::vector<double>& numeric,
                                 double tol = 1e-5) {
  ASSERT_EQ(analytic.size(), numeric.size());
  for (size_t i = 0; i < analytic.size(); ++i) {
    const double scale =
        std::max({1.0, std::fabs(analytic[i]), std::fabs(numeric[i])});
    EXPECT_NEAR(analytic[i], numeric[i], tol * scale)
        << "component " << i;
  }
}

}  // namespace logirec::testing

#endif  // LOGIREC_TESTS_TESTING_GRADCHECK_H_
