#include "hyper/maps.h"

#include <gtest/gtest.h>

#include "hyper/lorentz.h"
#include "hyper/poincare.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::hyper {
namespace {

using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

Vec RandomBallPoint(Rng* rng, int d) {
  Vec x(d);
  for (double& v : x) v = rng->Gaussian(0.0, 0.25);
  ProjectToBall(math::Span(x));
  if (math::Norm(x) > 0.8) {
    math::ScaleInPlace(math::Span(x), 0.8 / math::Norm(x));
  }
  return x;
}

TEST(MapsTest, RoundTripPoincareLorentzPoincare) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec x = RandomBallPoint(&rng, 6);
    const Vec lifted = PoincareToLorentz(x);
    EXPECT_NEAR(LorentzDot(lifted, lifted), -1.0, 1e-9)
        << "p^{-1} must land on the hyperboloid";
    const Vec back = LorentzToPoincare(lifted);
    for (int i = 0; i < 6; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST(MapsTest, RoundTripLorentzPoincareLorentz) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    Vec x(5, 0.0);
    for (int i = 1; i < 5; ++i) x[i] = rng.Gaussian(0.0, 0.5);
    ProjectToHyperboloid(math::Span(x));
    const Vec ball = LorentzToPoincare(x);
    EXPECT_LT(math::Norm(ball), 1.0);
    const Vec back = PoincareToLorentz(ball);
    for (int i = 0; i < 5; ++i) EXPECT_NEAR(back[i], x[i], 1e-7);
  }
}

TEST(MapsTest, DiffeomorphismPreservesDistances) {
  // The Poincaré and Lorentz models are isometric: d_P(p(x), p(y)) must
  // equal d_L(x, y) — this is what lets LogiRec exploit both models.
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec a = RandomBallPoint(&rng, 4);
    const Vec b = RandomBallPoint(&rng, 4);
    const double dp = PoincareDistance(a, b);
    const double dl =
        LorentzDistance(PoincareToLorentz(a), PoincareToLorentz(b));
    EXPECT_NEAR(dp, dl, 1e-6 * std::max(1.0, dp));
  }
}

TEST(MapsTest, OriginMapsToOrigin) {
  const Vec zero(4, 0.0);
  const Vec lifted = PoincareToLorentz(zero);
  EXPECT_NEAR(lifted[0], 1.0, 1e-12);
  for (int i = 1; i <= 4; ++i) EXPECT_NEAR(lifted[i], 0.0, 1e-12);
  const Vec back = LorentzToPoincare(LorentzOrigin(5));
  for (double v : back) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(MapsTest, PoincareToLorentzVjpMatchesFiniteDifference) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x = RandomBallPoint(&rng, 4);
    Vec w(5);
    for (double& v : w) v = rng.Gaussian(0.0, 1.0);
    const auto f = [&](const std::vector<double>& p) {
      return math::Dot(PoincareToLorentz(p), w);
    };
    Vec analytic(4, 0.0);
    PoincareToLorentzVjp(x, w, math::Span(analytic));
    ExpectGradientsClose(analytic, NumericalGradient(f, x), 1e-4);
  }
}

TEST(MapsTest, LorentzToPoincareVjpMatchesFiniteDifference) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Vec x(5, 0.0);
    for (int i = 1; i < 5; ++i) x[i] = rng.Gaussian(0.0, 0.4);
    ProjectToHyperboloid(math::Span(x));
    Vec w(4);
    for (double& v : w) v = rng.Gaussian(0.0, 1.0);
    const auto f = [&](const std::vector<double>& p) {
      return math::Dot(LorentzToPoincare(p), w);
    };
    Vec analytic(5, 0.0);
    LorentzToPoincareVjp(x, w, math::Span(analytic));
    ExpectGradientsClose(analytic, NumericalGradient(f, x), 1e-4);
  }
}

}  // namespace
}  // namespace logirec::hyper
