// Cross-cutting property tests of the geometry stack, parameterized over
// embedding dimension: isometries, inverse maps, and invariances that the
// individual unit tests exercise only at fixed sizes.

#include <cmath>

#include <gtest/gtest.h>

#include "hyper/hyperplane.h"
#include "hyper/lorentz.h"
#include "hyper/maps.h"
#include "hyper/poincare.h"
#include "util/rng.h"

namespace logirec::hyper {
namespace {

using math::Vec;

class GeometryDimTest : public ::testing::TestWithParam<int> {
 protected:
  Vec RandomBall(Rng* rng, double max_norm = 0.85) {
    Vec x(GetParam());
    for (double& v : x) v = rng->Gaussian(0.0, 1.0);
    math::ScaleInPlace(math::Span(x),
                       rng->Uniform(0.05, max_norm) / math::Norm(x));
    return x;
  }
};

TEST_P(GeometryDimTest, DiffeomorphismIsometryAcrossDims) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const Vec a = RandomBall(&rng);
    const Vec b = RandomBall(&rng);
    EXPECT_NEAR(PoincareDistance(a, b),
                LorentzDistance(PoincareToLorentz(a), PoincareToLorentz(b)),
                1e-6 * std::max(1.0, PoincareDistance(a, b)));
  }
}

TEST_P(GeometryDimTest, MobiusAddStaysInBall) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec a = RandomBall(&rng);
    const Vec b = RandomBall(&rng);
    EXPECT_LT(math::Norm(MobiusAdd(a, b)), 1.0);
  }
}

TEST_P(GeometryDimTest, MobiusLeftCancellation) {
  // Gyrogroup left cancellation: (-a) ⊕ (a ⊕ b) == b.
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec a = RandomBall(&rng, 0.6);
    const Vec b = RandomBall(&rng, 0.6);
    const Vec sum = MobiusAdd(a, b);
    const Vec back = MobiusAdd(math::Scale(a, -1.0), sum);
    for (int i = 0; i < GetParam(); ++i) {
      EXPECT_NEAR(back[i], b[i], 1e-9);
    }
  }
}

TEST_P(GeometryDimTest, ExpLogInverseOnHyperboloid) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 10; ++trial) {
    Vec z(GetParam() + 1, 0.0);
    for (int i = 1; i <= GetParam(); ++i) z[i] = rng.Gaussian(0.0, 1.0);
    const Vec x = LorentzExpOrigin(z);
    const Vec z2 = LorentzLogOrigin(x);
    for (int i = 0; i <= GetParam(); ++i) EXPECT_NEAR(z2[i], z[i], 1e-7);
  }
}

TEST_P(GeometryDimTest, DistanceInvariantUnderCoordinateReflection) {
  // Reflecting any single spatial coordinate is an isometry of both
  // models.
  Rng rng(GetParam() + 400);
  const Vec a = RandomBall(&rng);
  const Vec b = RandomBall(&rng);
  const double before = PoincareDistance(a, b);
  Vec ra = a, rb = b;
  const int axis = rng.UniformInt(GetParam());
  ra[axis] = -ra[axis];
  rb[axis] = -rb[axis];
  EXPECT_NEAR(PoincareDistance(ra, rb), before, 1e-10);
}

TEST_P(GeometryDimTest, BallRadiusShrinksMonotonicallyWithCenterNorm) {
  for (double lo = 0.1; lo < 0.85; lo += 0.1) {
    Vec c1(GetParam(), 0.0), c2(GetParam(), 0.0);
    c1[0] = lo;
    c2[0] = lo + 0.1;
    EXPECT_GT(BallFromCenter(c1).radius, BallFromCenter(c2).radius);
    EXPECT_LT(HyperplaneDistanceToOrigin(c1),
              HyperplaneDistanceToOrigin(c2));
  }
}

TEST_P(GeometryDimTest, RsgdPoincareNeverLeavesBall) {
  Rng rng(GetParam() + 500);
  Vec x = RandomBall(&rng);
  for (int step = 0; step < 100; ++step) {
    Vec g(GetParam());
    for (double& v : g) v = rng.Gaussian(0.0, 10.0);  // hostile gradients
    RsgdStepPoincare(math::Span(x), g, 0.5);
    ASSERT_LT(math::Norm(x), 1.0);
  }
}

TEST_P(GeometryDimTest, RsgdLorentzStaysOnManifoldUnderHostileGrads) {
  // Hostile (unclipped, sigma=10) gradients may legitimately push points
  // very far from the origin; the invariants that must survive are
  // finiteness and the *relative* hyperboloid constraint — at huge radii
  // the absolute "+1" in x0^2 = 1 + ||xs||^2 is below double precision.
  Rng rng(GetParam() + 600);
  Vec x(GetParam() + 1, 0.0);
  for (int i = 1; i <= GetParam(); ++i) x[i] = rng.Gaussian(0.0, 0.5);
  ProjectToHyperboloid(math::Span(x));
  for (int step = 0; step < 100; ++step) {
    Vec g(GetParam() + 1);
    for (double& v : g) v = rng.Gaussian(0.0, 10.0);
    RsgdStepLorentz(math::Span(x), g, 0.1);
    for (double v : x) ASSERT_TRUE(std::isfinite(v));
    const double rel_tol = 1e-9 * (1.0 + x[0] * x[0]);
    ASSERT_NEAR(LorentzDot(x, x), -1.0, std::max(1e-9, rel_tol));
  }
}

TEST_P(GeometryDimTest, RsgdLorentzExactManifoldUnderClippedGrads) {
  // The production path (optimizer clip 5, lr 0.05) keeps points in a
  // regime where the absolute constraint holds tightly.
  Rng rng(GetParam() + 700);
  Vec x(GetParam() + 1, 0.0);
  for (int i = 1; i <= GetParam(); ++i) x[i] = rng.Gaussian(0.0, 0.5);
  ProjectToHyperboloid(math::Span(x));
  for (int step = 0; step < 100; ++step) {
    Vec g(GetParam() + 1);
    for (double& v : g) v = rng.Gaussian(0.0, 1.0);
    math::ClipNorm(math::Span(g), 5.0);
    RsgdStepLorentz(math::Span(x), g, 0.05);
    // A persistent random-gradient walk drifts outward (hyperbolic random
    // walks escape), so the verifiable constraint is relative to x0^2.
    const double rel_tol = 1e-12 * (1.0 + x[0] * x[0]);
    ASSERT_NEAR(LorentzDot(x, x), -1.0, std::max(1e-9, rel_tol));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GeometryDimTest,
                         ::testing::Values(2, 3, 8, 16, 64));

}  // namespace
}  // namespace logirec::hyper
