#include "hyper/lorentz.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::hyper {
namespace {

using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

Vec RandomHyperboloidPoint(Rng* rng, int d, double scale = 0.5) {
  Vec x(d + 1, 0.0);
  for (int i = 1; i <= d; ++i) x[i] = rng->Gaussian(0.0, scale);
  ProjectToHyperboloid(math::Span(x));
  return x;
}

Vec RandomTangentAtOrigin(Rng* rng, int d, double scale = 0.5) {
  Vec z(d + 1, 0.0);
  for (int i = 1; i <= d; ++i) z[i] = rng->Gaussian(0.0, scale);
  return z;
}

TEST(LorentzTest, OriginSatisfiesConstraint) {
  const Vec o = LorentzOrigin(5);
  EXPECT_NEAR(LorentzDot(o, o), -1.0, 1e-12);
}

TEST(LorentzTest, ProjectionSatisfiesConstraint) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec x = RandomHyperboloidPoint(&rng, 6, 1.0);
    EXPECT_NEAR(LorentzDot(x, x), -1.0, 1e-9);
    EXPECT_GE(x[0], 1.0);
  }
}

TEST(LorentzTest, DistanceToSelfIsZero) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = RandomHyperboloidPoint(&rng, 4);
    EXPECT_NEAR(LorentzDistance(x, x), 0.0, 1e-5);
  }
}

TEST(LorentzTest, DistanceSymmetricAndTriangle) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec x = RandomHyperboloidPoint(&rng, 4);
    const Vec y = RandomHyperboloidPoint(&rng, 4);
    const Vec z = RandomHyperboloidPoint(&rng, 4);
    EXPECT_NEAR(LorentzDistance(x, y), LorentzDistance(y, x), 1e-12);
    EXPECT_LE(LorentzDistance(x, z),
              LorentzDistance(x, y) + LorentzDistance(y, z) + 1e-8);
  }
}

TEST(LorentzTest, ExpLogOriginRoundTrip) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec z = RandomTangentAtOrigin(&rng, 5);
    const Vec x = LorentzExpOrigin(z);
    EXPECT_NEAR(LorentzDot(x, x), -1.0, 1e-9);
    const Vec z2 = LorentzLogOrigin(x);
    for (int i = 0; i <= 5; ++i) EXPECT_NEAR(z2[i], z[i], 1e-8);
  }
}

TEST(LorentzTest, ExpOriginDistanceEqualsTangentNorm) {
  // d(o, exp_o(z)) = ||z|| (geodesics from the origin are radial).
  Rng rng(5);
  const Vec o = LorentzOrigin(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec z = RandomTangentAtOrigin(&rng, 3);
    const Vec x = LorentzExpOrigin(z);
    double spatial = 0.0;
    for (size_t i = 1; i < z.size(); ++i) spatial += z[i] * z[i];
    EXPECT_NEAR(LorentzDistance(o, x), std::sqrt(spatial), 1e-7);
  }
}

TEST(LorentzTest, DistanceGradientMatchesFiniteDifference) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x = RandomHyperboloidPoint(&rng, 3);
    const Vec y = RandomHyperboloidPoint(&rng, 3);
    Vec gx(4, 0.0), gy(4, 0.0);
    LorentzDistanceGrad(x, y, 1.0, math::Span(gx), math::Span(gy));
    // Ambient finite difference (off-manifold perturbations are fine: the
    // analytic gradient is the ambient one).
    const auto fx = [&](const std::vector<double>& p) {
      return LorentzDistance(p, y);
    };
    const auto fy = [&](const std::vector<double>& p) {
      return LorentzDistance(x, p);
    };
    ExpectGradientsClose(gx, NumericalGradient(fx, x), 1e-4);
    ExpectGradientsClose(gy, NumericalGradient(fy, y), 1e-4);
  }
}

TEST(LorentzTest, ExpOriginVjpMatchesFiniteDifference) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec z = RandomTangentAtOrigin(&rng, 4);
    // Random linear functional of the output as the scalar loss.
    Vec w(5);
    for (double& v : w) v = rng.Gaussian(0.0, 1.0);
    const auto f = [&](const std::vector<double>& p) {
      const Vec out = LorentzExpOrigin(p);
      return math::Dot(out, w);
    };
    Vec analytic(5, 0.0);
    LorentzExpOriginVjp(z, w, math::Span(analytic));
    Vec numeric = NumericalGradient(f, z);
    numeric[0] = 0.0;  // the time component of a tangent at o is fixed
    ExpectGradientsClose(analytic, numeric, 1e-4);
  }
}

TEST(LorentzTest, LogOriginVjpMatchesFiniteDifference) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x = RandomHyperboloidPoint(&rng, 4);
    Vec w(5, 0.0);
    for (size_t i = 1; i < w.size(); ++i) w[i] = rng.Gaussian(0.0, 1.0);
    const auto f = [&](const std::vector<double>& p) {
      const Vec out = LorentzLogOrigin(p);
      return math::Dot(out, w);
    };
    Vec analytic(5, 0.0);
    LorentzLogOriginVjp(x, w, math::Span(analytic));
    ExpectGradientsClose(analytic, NumericalGradient(f, x), 1e-4);
  }
}

TEST(LorentzTest, RiemannianGradIsTangent) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = RandomHyperboloidPoint(&rng, 4);
    Vec g(5);
    for (double& v : g) v = rng.Gaussian(0.0, 1.0);
    const Vec riem = LorentzRiemannianGrad(x, g);
    EXPECT_NEAR(LorentzDot(x, riem), 0.0, 1e-9);
  }
}

TEST(LorentzTest, ExpMapStaysOnManifold) {
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = RandomHyperboloidPoint(&rng, 4);
    Vec g(5);
    for (double& v : g) v = rng.Gaussian(0.0, 1.0);
    const Vec v = LorentzRiemannianGrad(x, g);
    const Vec y = LorentzExpMap(x, v);
    EXPECT_NEAR(LorentzDot(y, y), -1.0, 1e-8);
  }
}

TEST(LorentzTest, RsgdReducesDistanceToTarget) {
  Rng rng(11);
  Vec x = RandomHyperboloidPoint(&rng, 4);
  const Vec target = RandomHyperboloidPoint(&rng, 4);
  const double before = LorentzDistance(x, target);
  for (int step = 0; step < 60; ++step) {
    Vec g(5, 0.0);
    LorentzDistanceGrad(x, target, 1.0, math::Span(g), math::Span());
    RsgdStepLorentz(math::Span(x), g, 0.1);
  }
  EXPECT_LT(LorentzDistance(x, target), before * 0.2);
  EXPECT_NEAR(LorentzDot(x, x), -1.0, 1e-8);
}

}  // namespace
}  // namespace logirec::hyper
