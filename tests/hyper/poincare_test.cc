#include "hyper/poincare.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::hyper {
namespace {

using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

Vec RandomBallPoint(Rng* rng, int d, double max_norm = 0.8) {
  Vec x(d);
  for (double& v : x) v = rng->Gaussian(0.0, 0.3);
  const double n = math::Norm(x);
  const double target = rng->Uniform(0.05, max_norm);
  math::ScaleInPlace(math::Span(x), target / std::max(n, 1e-12));
  return x;
}

TEST(PoincareTest, DistanceToSelfIsZero) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = RandomBallPoint(&rng, 5);
    EXPECT_NEAR(PoincareDistance(x, x), 0.0, 1e-5);
  }
}

TEST(PoincareTest, DistanceIsSymmetric) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec x = RandomBallPoint(&rng, 6);
    const Vec y = RandomBallPoint(&rng, 6);
    EXPECT_NEAR(PoincareDistance(x, y), PoincareDistance(y, x), 1e-12);
  }
}

TEST(PoincareTest, TriangleInequalityHolds) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec x = RandomBallPoint(&rng, 4);
    const Vec y = RandomBallPoint(&rng, 4);
    const Vec z = RandomBallPoint(&rng, 4);
    EXPECT_LE(PoincareDistance(x, z),
              PoincareDistance(x, y) + PoincareDistance(y, z) + 1e-9);
  }
}

TEST(PoincareTest, DistanceGrowsNearBoundary) {
  // Equal Euclidean gaps map to larger hyperbolic distances near the rim —
  // the volume-expansion property motivating the paper's Fig. 3.
  const Vec a1{0.0, 0.0}, a2{0.1, 0.0};
  const Vec b1{0.8, 0.0}, b2{0.9, 0.0};
  EXPECT_GT(PoincareDistance(b1, b2), PoincareDistance(a1, a2));
}

TEST(PoincareTest, ProjectToBallClampsNorm) {
  Vec x{3.0, 4.0};
  ProjectToBall(math::Span(x));
  EXPECT_LE(math::Norm(x), 1.0 - kBallEps + 1e-12);
  // Direction preserved.
  EXPECT_NEAR(x[1] / x[0], 4.0 / 3.0, 1e-9);
}

TEST(PoincareTest, ProjectToBallKeepsInteriorPointsIntact) {
  Vec x{0.1, -0.2};
  const Vec before = x;
  ProjectToBall(math::Span(x));
  EXPECT_EQ(x, before);
}

TEST(PoincareTest, MobiusAddZeroIsIdentity) {
  Rng rng(4);
  const Vec zero(5, 0.0);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = RandomBallPoint(&rng, 5);
    const Vec left = MobiusAdd(zero, x);
    const Vec right = MobiusAdd(x, zero);
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(left[i], x[i], 1e-12);
      EXPECT_NEAR(right[i], x[i], 1e-12);
    }
  }
}

TEST(PoincareTest, MobiusAddLeftInverse) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = RandomBallPoint(&rng, 4);
    const Vec neg_x = math::Scale(x, -1.0);
    const Vec sum = MobiusAdd(neg_x, x);
    for (double v : sum) EXPECT_NEAR(v, 0.0, 1e-10);
  }
}

TEST(PoincareTest, ExpLogRoundTrip) {
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec x = RandomBallPoint(&rng, 5, 0.6);
    const Vec y = RandomBallPoint(&rng, 5, 0.6);
    const Vec v = PoincareLogMap(x, y);
    const Vec y2 = PoincareExpMap(x, v);
    for (int i = 0; i < 5; ++i) EXPECT_NEAR(y2[i], y[i], 1e-6);
  }
}

TEST(PoincareTest, LogMapNormEqualsDistance) {
  // ||log_x(y)|| in the Riemannian sense equals d(x,y); the returned
  // tangent has Euclidean norm d(x,y) / lambda_x * ... — check the known
  // special case x = 0 where exp/log reduce to the radial formulas.
  const Vec origin(3, 0.0);
  const Vec y{0.3, 0.2, -0.1};
  const Vec v = PoincareLogMap(origin, y);
  const Vec back = PoincareExpMap(origin, v);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(back[i], y[i], 1e-9);
}

TEST(PoincareTest, DistanceGradientMatchesFiniteDifference) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x = RandomBallPoint(&rng, 4);
    const Vec y = RandomBallPoint(&rng, 4);
    Vec gx(4, 0.0), gy(4, 0.0);
    PoincareDistanceGrad(x, y, 1.0, math::Span(gx), math::Span(gy));

    const auto fx = [&](const std::vector<double>& p) {
      return PoincareDistance(p, y);
    };
    const auto fy = [&](const std::vector<double>& p) {
      return PoincareDistance(x, p);
    };
    ExpectGradientsClose(gx, NumericalGradient(fx, x), 1e-4);
    ExpectGradientsClose(gy, NumericalGradient(fy, y), 1e-4);
  }
}

TEST(PoincareTest, DistanceGradScaleAccumulates) {
  Rng rng(8);
  const Vec x = RandomBallPoint(&rng, 3);
  const Vec y = RandomBallPoint(&rng, 3);
  Vec g1(3, 0.0), g2(3, 0.0);
  PoincareDistanceGrad(x, y, 2.5, math::Span(g1), math::Span());
  PoincareDistanceGrad(x, y, 1.0, math::Span(g2), math::Span());
  PoincareDistanceGrad(x, y, 1.5, math::Span(g2), math::Span());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(g1[i], g2[i], 1e-12);
}

TEST(PoincareTest, RsgdStepReducesDistanceToTarget) {
  Rng rng(9);
  Vec x = RandomBallPoint(&rng, 4);
  const Vec target = RandomBallPoint(&rng, 4);
  double prev = PoincareDistance(x, target);
  for (int step = 0; step < 50; ++step) {
    Vec g(4, 0.0);
    PoincareDistanceGrad(x, target, 1.0, math::Span(g), math::Span());
    RsgdStepPoincare(math::Span(x), g, 0.1);
  }
  EXPECT_LT(PoincareDistance(x, target), prev * 0.2);
  EXPECT_LT(math::Norm(x), 1.0);
}

TEST(PoincareTest, NormToOriginMatchesDistanceFromZero) {
  Rng rng(10);
  const Vec zero(4, 0.0);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec x = RandomBallPoint(&rng, 4);
    EXPECT_NEAR(PoincareNormToOrigin(x), PoincareDistance(zero, x), 1e-6);
  }
}

TEST(PoincareTest, ExpMapEq17MatchesStandardAtOrigin) {
  // At x = 0 the conformal factor is 2, so the paper's Eq. 17 variant
  // (which omits lambda_x) differs; both must still land inside the ball
  // and point in the direction of v.
  const Vec origin(3, 0.0);
  const Vec v{0.4, 0.0, 0.0};
  const Vec a = PoincareExpMap(origin, v);
  const Vec b = PoincareExpMapEq17(origin, v);
  EXPECT_GT(a[0], 0.0);
  EXPECT_GT(b[0], 0.0);
  EXPECT_LT(math::Norm(a), 1.0);
  EXPECT_LT(math::Norm(b), 1.0);
}

}  // namespace
}  // namespace logirec::hyper
