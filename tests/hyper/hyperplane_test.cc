#include "hyper/hyperplane.h"

#include <cmath>

#include <gtest/gtest.h>

#include "hyper/poincare.h"
#include "testing/gradcheck.h"
#include "util/rng.h"

namespace logirec::hyper {
namespace {

using math::Vec;
using testing::ExpectGradientsClose;
using testing::NumericalGradient;

Vec RandomCenter(Rng* rng, int d, double lo = 0.2, double hi = 0.8) {
  Vec c(d);
  for (double& v : c) v = rng->Gaussian(0.0, 1.0);
  const double target = rng->Uniform(lo, hi);
  math::ScaleInPlace(math::Span(c), target / math::Norm(c));
  return c;
}

TEST(HyperplaneTest, BallFormulaMatchesClosedForm) {
  // For c = (n, 0): o_c = ((1+n^2)/(2n), 0), r_c = (1-n^2)/(2n).
  const double n = 0.5;
  const Vec c{n, 0.0};
  const Ball ball = BallFromCenter(c);
  EXPECT_NEAR(ball.center[0], (1 + n * n) / (2 * n), 1e-12);
  EXPECT_NEAR(ball.center[1], 0.0, 1e-12);
  EXPECT_NEAR(ball.radius, (1 - n * n) / (2 * n), 1e-12);
}

TEST(HyperplaneTest, BallBoundaryPassesThroughCenterPoint) {
  // The hyperplane's defining point c lies ON the boundary of its
  // enclosing ball: ||c - o_c|| = r_c.
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec c = RandomCenter(&rng, 5);
    const Ball ball = BallFromCenter(c);
    EXPECT_NEAR(math::Distance(c, ball.center), ball.radius, 1e-9);
  }
}

TEST(HyperplaneTest, BallIntersectsUnitSpherePerpendicular) {
  // Perpendicular intersection with the unit sphere means
  // ||o_c||^2 = 1 + r_c^2 (Pythagoras at the intersection point).
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec c = RandomCenter(&rng, 4);
    const Ball ball = BallFromCenter(c);
    EXPECT_NEAR(math::SquaredNorm(ball.center), 1.0 + ball.radius * ball.radius,
                1e-9);
  }
}

TEST(HyperplaneTest, FinerTagsHaveSmallerRadiusAndLargerOriginDistance) {
  // The granularity correlation in Section V-B: as ||c|| grows, r_c
  // shrinks and the distance to the origin grows.
  const Vec coarse{0.3, 0.0};
  const Vec fine{0.8, 0.0};
  EXPECT_GT(BallFromCenter(coarse).radius, BallFromCenter(fine).radius);
  EXPECT_LT(HyperplaneDistanceToOrigin(coarse),
            HyperplaneDistanceToOrigin(fine));
}

TEST(HyperplaneTest, ClampKeepsNormInRange) {
  Vec tiny{1e-15, 0.0};
  ClampHyperplaneCenter(math::Span(tiny));
  EXPECT_GE(math::Norm(tiny), kMinCenterNorm - 1e-12);

  Vec small{0.01, 0.0};
  ClampHyperplaneCenter(math::Span(small));
  EXPECT_NEAR(math::Norm(small), kMinCenterNorm, 1e-12);

  Vec big{2.0, 2.0};
  ClampHyperplaneCenter(math::Span(big));
  EXPECT_NEAR(math::Norm(big), kMaxCenterNorm, 1e-12);

  Vec ok{0.4, 0.1};
  const Vec before = ok;
  ClampHyperplaneCenter(math::Span(ok));
  EXPECT_EQ(ok, before);
}

TEST(HyperplaneTest, VjpMatchesFiniteDifference) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec c = RandomCenter(&rng, 4, 0.25, 0.75);
    Vec w(4);
    for (double& v : w) v = rng.Gaussian(0.0, 1.0);
    const double wr = rng.Gaussian(0.0, 1.0);
    const auto f = [&](const std::vector<double>& p) {
      const Ball ball = BallFromCenter(p);
      return math::Dot(ball.center, w) + wr * ball.radius;
    };
    Vec analytic(4, 0.0);
    BallFromCenterVjp(c, w, wr, math::Span(analytic));
    ExpectGradientsClose(analytic, NumericalGradient(f, c), 1e-4);
  }
}

TEST(HyperplaneTest, RadiusOnlyVjp) {
  Rng rng(4);
  const Vec c = RandomCenter(&rng, 3);
  const auto f = [&](const std::vector<double>& p) {
    return BallFromCenter(p).radius;
  };
  Vec analytic(3, 0.0);
  BallFromCenterVjp(c, math::ConstSpan(), 1.0, math::Span(analytic));
  ExpectGradientsClose(analytic, NumericalGradient(f, c), 1e-4);
}

}  // namespace
}  // namespace logirec::hyper
