// Invariance properties of the full-ranking evaluator under score
// transformations, with randomized scorers.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "util/rng.h"

namespace logirec::eval {
namespace {

class RandomScorer : public Scorer {
 public:
  RandomScorer(int num_users, int num_items, uint64_t seed, double shift,
               double scale)
      : num_items_(num_items), shift_(shift), scale_(scale) {
    Rng rng(seed);
    scores_.resize(num_users);
    for (auto& row : scores_) {
      row.resize(num_items);
      for (double& s : row) s = rng.Gaussian(0.0, 1.0);
    }
  }
  void ScoreItems(int user, std::vector<double>* out) const override {
    out->resize(num_items_);
    for (int v = 0; v < num_items_; ++v) {
      (*out)[v] = scale_ * scores_[user][v] + shift_;
    }
  }

 private:
  int num_items_;
  double shift_, scale_;
  std::vector<std::vector<double>> scores_;
};

struct Fixture {
  data::Dataset dataset;
  data::Split split;
  Fixture() {
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 90;
    config.seed = 77;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

TEST(EvaluatorPropertyTest, MetricsInvariantUnderPositiveAffineTransform) {
  Fixture fx;
  Evaluator evaluator(&fx.split, fx.dataset.num_items);
  const RandomScorer base(fx.dataset.num_users, fx.dataset.num_items, 5,
                          0.0, 1.0);
  const RandomScorer shifted(fx.dataset.num_users, fx.dataset.num_items, 5,
                             17.0, 3.5);
  const EvalResult a = evaluator.Evaluate(base);
  const EvalResult b = evaluator.Evaluate(shifted);
  for (const auto& [key, value] : a.mean) {
    EXPECT_NEAR(value, b.mean.at(key), 1e-9) << key;
  }
}

TEST(EvaluatorPropertyTest, MetricsBoundedInPercentRange) {
  Fixture fx;
  Evaluator evaluator(&fx.split, fx.dataset.num_items);
  const RandomScorer scorer(fx.dataset.num_users, fx.dataset.num_items, 6,
                            0.0, 1.0);
  const EvalResult result = evaluator.Evaluate(scorer);
  for (const auto& [key, per_user] : result.per_user) {
    for (double v : per_user) {
      EXPECT_GE(v, 0.0) << key;
      EXPECT_LE(v, 100.0 + 1e-9) << key;
    }
  }
}

TEST(EvaluatorPropertyTest, RandomScorerNearChanceRecall) {
  // Expected Recall@K of a random ranking over n candidates is ~K/n.
  Fixture fx;
  Evaluator evaluator(&fx.split, fx.dataset.num_items, {20});
  std::vector<double> recalls;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const RandomScorer scorer(fx.dataset.num_users, fx.dataset.num_items,
                              seed, 0.0, 1.0);
    recalls.push_back(evaluator.Evaluate(scorer).Get("Recall@20"));
  }
  double mean = 0.0;
  for (double r : recalls) mean += r / recalls.size();
  // ~20/90 = 22% of truth is recalled in expectation; allow wide noise.
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 40.0);
}

TEST(EvaluatorPropertyTest, ValidationAndTestModesDiffer) {
  Fixture fx;
  Evaluator evaluator(&fx.split, fx.dataset.num_items);
  const RandomScorer scorer(fx.dataset.num_users, fx.dataset.num_items, 9,
                            0.0, 1.0);
  const EvalResult val = evaluator.Evaluate(scorer, true);
  const EvalResult test = evaluator.Evaluate(scorer, false);
  // Different ground truths — identical results across every metric would
  // indicate fold leakage.
  bool any_diff = false;
  for (const auto& [key, value] : val.mean) {
    if (std::abs(value - test.mean.at(key)) > 1e-12) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace logirec::eval
