// Kernel-equivalence suite: for every model in the zoo, the batched
// ScoreItemsInto() path must reproduce the scalar ScoreItems() reference —
// bit-identical scores in exact mode, identical Top-K order in ranking
// mode, and identical Recall@K/NDCG@K out of Evaluator::Evaluate whether
// the evaluator runs the native kernels or the ScoreItems() bridge.

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"

namespace logirec::eval {
namespace {

struct Fixture {
  data::Dataset dataset;
  data::Split split;

  Fixture() {
    data::SyntheticConfig config;
    config.name = "cd-mini";
    config.num_users = 90;
    config.num_items = 120;
    config.seed = 17;
    dataset = data::GenerateSynthetic(config);
    split = data::TemporalSplit(dataset);
  }
};

core::TrainConfig FastConfig() {
  core::TrainConfig config;
  config.dim = 16;
  config.layers = 2;
  config.epochs = 8;
  return config;
}

/// Hides a model's kernel overrides from the evaluator: only the scalar
/// ScoreItems() is forwarded, so ScoreItemsInto() falls back to the
/// default bridge — the exact configuration an out-of-tree scorer has.
class BridgeOnlyScorer : public Scorer {
 public:
  explicit BridgeOnlyScorer(const Scorer* inner) : inner_(inner) {}
  void ScoreItems(int user, std::vector<double>* out) const override {
    inner_->ScoreItems(user, out);
  }

 private:
  const Scorer* inner_;
};

class EveryModelEquivalenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryModelEquivalenceTest, KernelPathMatchesScalarReference) {
  Fixture fx;
  auto model = baselines::MakeModel(GetParam(), FastConfig());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(fx.dataset, fx.split).ok());

  const int num_items = fx.dataset.num_items;
  std::vector<double> scalar;
  std::vector<double> exact(num_items), ranking(num_items);
  std::vector<int> scratch, kernel_topk;
  for (int u = 0; u < fx.dataset.num_users; u += 7) {
    (*model)->ScoreItems(u, &scalar);
    ASSERT_EQ(static_cast<int>(scalar.size()), num_items);

    // Exact mode is bit-identical to the scalar reference.
    (*model)->ScoreItemsInto(u, math::Span(exact), ScoreMode::kExact);
    for (int v = 0; v < num_items; ++v) {
      ASSERT_EQ(exact[v], scalar[v])
          << GetParam() << " user " << u << " item " << v;
    }

    // Ranking mode produces the identical Top-K list.
    (*model)->ScoreItemsInto(u, math::Span(ranking), ScoreMode::kRanking);
    TopKInto(math::ConstSpan(ranking), 20, &scratch, &kernel_topk);
    ASSERT_EQ(kernel_topk, TopK(scalar, 20)) << GetParam() << " user " << u;
  }
}

TEST_P(EveryModelEquivalenceTest, EvaluatorMetricsMatchBridgePath) {
  Fixture fx;
  auto model = baselines::MakeModel(GetParam(), FastConfig());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(fx.dataset, fx.split).ok());

  Evaluator evaluator(&fx.split, fx.dataset.num_items);
  const EvalResult native = evaluator.Evaluate(**model);
  BridgeOnlyScorer bridge((*model).get());
  const EvalResult bridged = evaluator.Evaluate(bridge);

  ASSERT_EQ(native.users_evaluated, bridged.users_evaluated);
  ASSERT_EQ(native.mean.size(), bridged.mean.size());
  for (const auto& [key, value] : native.mean) {
    EXPECT_EQ(value, bridged.mean.at(key)) << GetParam() << " " << key;
  }
  for (const auto& [key, vec] : native.per_user) {
    EXPECT_EQ(vec, bridged.per_user.at(key)) << GetParam() << " " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelZoo, EveryModelEquivalenceTest,
    ::testing::ValuesIn(baselines::AllModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace logirec::eval
