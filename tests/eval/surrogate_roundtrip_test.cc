// Surrogate round-trip property, for every model in the zoo: after a
// binary snapshot save/load, (1) the kRanking surrogate still orders the
// catalog exactly like the exact scores, (2) the surrogate spec survives
// restoration (same kind, scoring state re-wired to the restored
// tensors), and (3) where a linear surrogate exists, a covering ANN probe
// over the RESTORED model reproduces its exact top-k — the property the
// serving path relies on when it builds the index at snapshot-restore
// time.

#include <cctype>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "core/snapshot.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "retrieval/retriever.h"

namespace logirec::eval {
namespace {

class SurrogateRoundtripTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_surrogate_roundtrip_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 80;
    config.seed = 11;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  data::Dataset dataset_;
  data::Split split_;
};

TEST_P(SurrogateRoundtripTest, RankingOrderSurvivesSnapshotRoundTrip) {
  core::TrainConfig config;
  config.dim = 8;
  config.layers = 2;
  config.epochs = 5;
  auto model = baselines::MakeModel(GetParam(), config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(dataset_, split_).ok());

  core::SnapshotHeader header;
  header.dim = config.dim;
  header.layers = config.layers;
  header.num_users = dataset_.num_users;
  header.num_items = dataset_.num_items;
  const std::string path = dir_ + "/" + GetParam() + ".snap";
  ASSERT_TRUE(core::ModelSnapshot::Write(**model, header, path).ok());
  auto restored = core::ModelSnapshot::Read(path, baselines::MakeModel);
  ASSERT_TRUE(restored.ok());

  // The surrogate kind is a property of the architecture; restoring must
  // neither lose it nor invent one.
  const RankingSurrogateSpec before = (*model)->RankingSurrogate();
  const RankingSurrogateSpec after = (*restored)->RankingSurrogate();
  ASSERT_EQ(after.kind, before.kind) << GetParam();
  if (after.kind != RankingSurrogateSpec::Kind::kNone) {
    ASSERT_NE(after.items, nullptr);
    ASSERT_EQ(after.items->items(), dataset_.num_items);
  }

  const int n = dataset_.num_items;
  std::vector<double> exact(n), ranking(n);
  std::vector<int> scratch, exact_order, ranking_order;
  for (int u = 0; u < dataset_.num_users; u += 4) {
    // Property (1): full-catalog order equivalence on the restored model,
    // k = n so every rank position (and every tie) is checked.
    (*restored)->ScoreItemsInto(u, math::Span(exact), ScoreMode::kExact);
    (*restored)->ScoreItemsInto(u, math::Span(ranking),
                                ScoreMode::kRanking);
    TopKInto(math::ConstSpan(exact.data(), exact.size()), n, &scratch,
             &exact_order);
    TopKInto(math::ConstSpan(ranking.data(), ranking.size()), n, &scratch,
             &ranking_order);
    ASSERT_EQ(ranking_order, exact_order) << GetParam() << " user " << u;
    // And the restored ranking path agrees with the original model's.
    (*model)->ScoreItemsInto(u, math::Span(ranking), ScoreMode::kRanking);
    TopKInto(math::ConstSpan(ranking.data(), ranking.size()), n, &scratch,
             &ranking_order);
    ASSERT_EQ(ranking_order, exact_order)
        << GetParam() << " user " << u << " (original vs restored)";
  }

  // Property (3): a covering IVF probe over the restored model equals its
  // exact top-k; surrogate-free models must refuse the index instead.
  retrieval::RetrievalOptions options;
  options.kind = retrieval::RetrievalKind::kIvf;
  options.ivf.cells = 5;
  options.ivf.nprobe = 5;
  auto built = retrieval::BuildRetriever(**restored, options);
  if (after.kind == RankingSurrogateSpec::Kind::kNone) {
    ASSERT_FALSE(built.ok()) << GetParam();
    EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
    return;
  }
  ASSERT_TRUE(built.ok()) << GetParam() << ": "
                          << built.status().ToString();
  (*restored)->AttachRetriever(built->get());
  RetrieveScratch retrieve_scratch;
  std::vector<int> retrieved;
  for (int u = 0; u < dataset_.num_users; u += 4) {
    (*restored)->ScoreItemsInto(u, math::Span(exact), ScoreMode::kExact);
    (*restored)->RetrieveInto(u, 10, nullptr, &retrieve_scratch,
                              &retrieved);
    EXPECT_EQ(retrieved, TopK(exact, 10)) << GetParam() << " user " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelZoo, SurrogateRoundtripTest,
    ::testing::ValuesIn(baselines::AllModelNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace logirec::eval
