#include <cmath>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "util/rng.h"

namespace logirec::eval {
namespace {

/// The original heap-based Top-K selection (the pre-kernel implementation
/// of eval::TopK), kept verbatim as the reference oracle for the
/// nth_element-based replacement. Tie-break: at equal score the larger id
/// is evicted first, so the smaller id ranks first.
std::vector<int> HeapTopKOracle(const std::vector<double>& scores, int k) {
  using Entry = std::pair<double, int>;  // (score, item); min-heap by score
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
    if (scores[i] == neg_inf) continue;
    if (static_cast<int>(heap.size()) < k) {
      heap.push({scores[i], i});
    } else if (!heap.empty() && cmp({scores[i], i}, heap.top())) {
      heap.pop();
      heap.push({scores[i], i});
    }
  }
  std::vector<int> out(heap.size());
  for (int i = static_cast<int>(heap.size()) - 1; i >= 0; --i) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

std::vector<double> RandomScores(Rng* rng, int n, bool with_ties,
                                 double mask_prob) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  std::vector<double> scores(n);
  for (double& s : scores) {
    s = rng->Gaussian(0.0, 1.0);
    // Quantizing forces many exact ties, exercising the id tie-break.
    if (with_ties) s = std::round(s * 4.0) / 4.0;
    if (rng->Uniform() < mask_prob) s = neg_inf;
  }
  return scores;
}

TEST(TopKTest, MatchesHeapOracleOnRandomScores) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.Uniform() * 300);
    const int k = 1 + static_cast<int>(rng.Uniform() * 40);
    const bool ties = trial % 2 == 0;
    const auto scores = RandomScores(&rng, n, ties, 0.2);
    EXPECT_EQ(TopK(scores, k), HeapTopKOracle(scores, k))
        << "n=" << n << " k=" << k << " ties=" << ties;
  }
}

TEST(TopKTest, TopKIntoMatchesTopKAndReusesBuffers) {
  Rng rng(321);
  std::vector<int> scratch, out;
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.Uniform() * 200);
    const int k = 1 + static_cast<int>(rng.Uniform() * 30);
    const auto scores = RandomScores(&rng, n, /*with_ties=*/true, 0.1);
    TopKInto(math::ConstSpan(scores.data(), scores.size()), k, &scratch,
             &out);
    EXPECT_EQ(out, HeapTopKOracle(scores, k));
  }
}

TEST(TopKTest, ThresholdScanPathMatchesOracle) {
  // k*8 < n routes TopKInto through the single-pass threshold scan; pin
  // it to the heap oracle at realistic catalog sizes, with heavy ties.
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2000 + static_cast<int>(rng.Uniform() * 3000);
    const int k = 1 + static_cast<int>(rng.Uniform() * 50);
    const auto scores = RandomScores(&rng, n, /*with_ties=*/true, 0.3);
    EXPECT_EQ(TopK(scores, k), HeapTopKOracle(scores, k))
        << "n=" << n << " k=" << k;
  }
}

TEST(TopKTest, ScanPathWithFewerSurvivorsThanK) {
  // Nearly everything masked: the scan must return only the survivors,
  // ranked, even though it never fills its k-slot buffer.
  const double neg_inf = -std::numeric_limits<double>::infinity();
  std::vector<double> scores(500, neg_inf);
  scores[17] = 1.0;
  scores[400] = 3.0;
  scores[123] = 2.0;
  EXPECT_EQ(TopK(scores, 20), (std::vector<int>{400, 123, 17}));
}

TEST(TopKTest, AllMaskedReturnsEmpty) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  std::vector<double> scores(10, neg_inf);
  EXPECT_TRUE(TopK(scores, 5).empty());
}

TEST(TopKTest, KLargerThanCandidatesReturnsAllSorted) {
  std::vector<double> scores = {1.0, 3.0, 2.0};
  EXPECT_EQ(TopK(scores, 10), (std::vector<int>{1, 2, 0}));
}

TEST(TopKTest, EqualScoresPreferSmallerId) {
  std::vector<double> scores = {2.0, 2.0, 2.0, 1.0};
  EXPECT_EQ(TopK(scores, 2), (std::vector<int>{0, 1}));
}

TEST(TopKTest, ZeroOrNegativeKReturnsEmpty) {
  std::vector<double> scores = {1.0, 2.0};
  EXPECT_TRUE(TopK(scores, 0).empty());
  EXPECT_TRUE(TopK(scores, -3).empty());
  std::vector<int> scratch, out{7, 8, 9};
  TopKInto(math::ConstSpan(scores.data(), scores.size()), 0, &scratch, &out);
  EXPECT_TRUE(out.empty());  // stale output must be cleared, not kept
}

TEST(TopKTest, KEqualToAndBeyondNumItems) {
  // k == n and k > n both return the full ranking; the candidate-retrieval
  // path leans on this when min_candidates exceeds the catalog.
  std::vector<double> scores = {0.5, -1.0, 2.0, 0.5};
  const std::vector<int> want = {2, 0, 3, 1};  // ties: smaller id first
  EXPECT_EQ(TopK(scores, 4), want);
  EXPECT_EQ(TopK(scores, 1000), want);
  std::vector<int> scratch, out;
  TopKInto(math::ConstSpan(scores.data(), scores.size()),
           static_cast<int>(scores.size()), &scratch, &out);
  EXPECT_EQ(out, want);
}

TEST(TopKTest, AllTiedScoresRankByAscendingId) {
  // The documented deterministic tie-break: equal scores order by item id
  // ascending — a total order, so fully tied input is just 0..k-1.
  std::vector<double> scores(64, 3.25);
  EXPECT_EQ(TopK(scores, 5), (std::vector<int>{0, 1, 2, 3, 4}));
  std::vector<int> scratch, out;
  TopKInto(math::ConstSpan(scores.data(), scores.size()), 64, &scratch,
           &out);
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i);
  // Same law through the large-n threshold-scan path (k*8 < n).
  std::vector<double> big(4096, -7.5);
  EXPECT_EQ(TopK(big, 3), (std::vector<int>{0, 1, 2}));
}

TEST(TopKTest, TopKIntoEmptyScores) {
  std::vector<double> empty;
  std::vector<int> scratch, out{1, 2};
  TopKInto(math::ConstSpan(empty.data(), empty.size()), 5, &scratch, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace logirec::eval
