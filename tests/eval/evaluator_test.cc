#include "eval/evaluator.h"

#include <gtest/gtest.h>

namespace logirec::eval {
namespace {

/// Scores items by a fixed per-user preference table.
class FakeScorer : public Scorer {
 public:
  explicit FakeScorer(std::vector<std::vector<double>> scores)
      : scores_(std::move(scores)) {}
  void ScoreItems(int user, std::vector<double>* out) const override {
    *out = scores_[user];
  }

 private:
  std::vector<std::vector<double>> scores_;
};

data::Split MakeSplit() {
  data::Split split;
  // 2 users, 4 items. user 0: train {0}, val {1}, test {2}.
  // user 1: train {3}, val {}, test {} (excluded from eval).
  split.train = {{0}, {3}};
  split.validation = {{1}, {}};
  split.test = {{2}, {}};
  return split;
}

TEST(EvaluatorTest, PerfectScorerGetsFullRecall) {
  const data::Split split = MakeSplit();
  // user 0 ranks item 2 highest among unseen items.
  FakeScorer scorer({{0.0, 0.0, 1.0, 0.5}, {0, 0, 0, 0}});
  Evaluator evaluator(&split, 4, {1, 2});
  const EvalResult result = evaluator.Evaluate(scorer);
  EXPECT_EQ(result.users_evaluated, 1);
  EXPECT_DOUBLE_EQ(result.Get("Recall@1"), 100.0);
  EXPECT_DOUBLE_EQ(result.Get("NDCG@1"), 100.0);
}

TEST(EvaluatorTest, TrainAndValidationItemsAreMasked) {
  const data::Split split = MakeSplit();
  // Items 0 (train) and 1 (validation) have the best raw scores, but must
  // be excluded, so item 2 (test) still tops the list.
  FakeScorer scorer({{10.0, 9.0, 1.0, 0.5}, {0, 0, 0, 0}});
  Evaluator evaluator(&split, 4, {1});
  const EvalResult result = evaluator.Evaluate(scorer);
  EXPECT_DOUBLE_EQ(result.Get("Recall@1"), 100.0);
}

TEST(EvaluatorTest, ValidationModeMasksOnlyTrain) {
  const data::Split split = MakeSplit();
  FakeScorer scorer({{10.0, 1.0, 9.0, 0.5}, {0, 0, 0, 0}});
  Evaluator evaluator(&split, 4, {1});
  // In validation mode, item 2 (test fold) stays in the candidate set and
  // outranks validation item 1 -> recall 0.
  const EvalResult result = evaluator.Evaluate(scorer, true);
  EXPECT_DOUBLE_EQ(result.Get("Recall@1"), 0.0);
}

TEST(EvaluatorTest, UsersWithoutTestItemsAreSkipped) {
  const data::Split split = MakeSplit();
  FakeScorer scorer({{0, 0, 1, 0}, {1, 1, 1, 1}});
  Evaluator evaluator(&split, 4, {1});
  const EvalResult result = evaluator.Evaluate(scorer);
  EXPECT_EQ(result.users_evaluated, 1);
  EXPECT_EQ(result.per_user.at("Recall@1").size(), 1u);
}

TEST(EvaluatorTest, WorstScorerGetsZero) {
  const data::Split split = MakeSplit();
  FakeScorer scorer({{0.0, 0.0, -5.0, 1.0}, {0, 0, 0, 0}});
  Evaluator evaluator(&split, 4, {1});
  const EvalResult result = evaluator.Evaluate(scorer);
  EXPECT_DOUBLE_EQ(result.Get("Recall@1"), 0.0);
}

}  // namespace
}  // namespace logirec::eval
