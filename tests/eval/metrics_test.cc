#include "eval/metrics.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace logirec::eval {
namespace {

TEST(RecallTest, BasicCases) {
  const std::vector<int> ranked = {5, 3, 9, 1, 7};
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {5, 9}, 5), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {5, 9}, 2), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {2, 4}, 5), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {}, 5), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1}, 5), 0.0);
}

TEST(RecallTest, TruncatesAtK) {
  const std::vector<int> ranked = {1, 2, 3};
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {3}, 2), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, {3}, 3), 1.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(NdcgAtK({4, 8}, {4, 8}, 2), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({4, 8, 9}, {4, 8}, 10), 1.0);
}

TEST(NdcgTest, PositionAware) {
  // Hit at rank 1 beats hit at rank 3.
  const double top = NdcgAtK({7, 1, 2}, {7}, 3);
  const double low = NdcgAtK({1, 2, 7}, {7}, 3);
  EXPECT_GT(top, low);
  EXPECT_DOUBLE_EQ(top, 1.0);
  EXPECT_NEAR(low, (1.0 / std::log2(4.0)) / 1.0, 1e-12);
}

TEST(NdcgTest, IdcgUsesTruncatedIdeal) {
  // 3 relevant items, cutoff 2: IDCG = 1 + 1/log2(3).
  const double ndcg = NdcgAtK({5, 6}, {5, 6, 7}, 2);
  EXPECT_NEAR(ndcg, 1.0, 1e-12);
}

TEST(NdcgTest, EmptyTruthIsZero) {
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2}, {}, 5), 0.0);
}

TEST(TopKTest, ReturnsBestFirst) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  EXPECT_EQ(TopK(scores, 2), (std::vector<int>{1, 3}));
  EXPECT_EQ(TopK(scores, 4), (std::vector<int>{1, 3, 2, 0}));
}

TEST(TopKTest, KLargerThanInput) {
  const std::vector<double> scores = {0.3, 0.1};
  EXPECT_EQ(TopK(scores, 10), (std::vector<int>{0, 1}));
}

TEST(TopKTest, SkipsNegativeInfinity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  const std::vector<double> scores = {ninf, 0.2, ninf, 0.8};
  EXPECT_EQ(TopK(scores, 4), (std::vector<int>{3, 1}));
}

TEST(TopKTest, DeterministicOnTies) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const auto a = TopK(scores, 2);
  const auto b = TopK(scores, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
}

}  // namespace
}  // namespace logirec::eval
