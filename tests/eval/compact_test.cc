// eval::CompactCatalog / CompactScorer: precision parsing, Build
// preconditions, subset-vs-full-scan bit-identity (the contract IVF and
// HNSW rerank rely on), query narrowing, float Top-K tie-breaks, and the
// headline tolerance gate — compact NDCG/Recall against the f64 oracle
// on a trained model.

#include "eval/compact.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "retrieval/embedding_scorer.h"
#include "util/rng.h"

namespace logirec::eval {
namespace {

constexpr int kItems = 150;
constexpr int kUsers = 12;
constexpr int kDim = 10;

retrieval::EmbeddingScorer MakeScorer(retrieval::SurrogateKind kind,
                                      uint64_t seed) {
  Rng rng(seed);
  math::Matrix users(kUsers, kDim), items(kItems, kDim);
  for (int r = 0; r < kUsers; ++r) {
    for (int c = 0; c < kDim; ++c) users.At(r, c) = rng.Gaussian(0.0, 0.4);
  }
  for (int r = 0; r < kItems; ++r) {
    for (int c = 0; c < kDim; ++c) items.At(r, c) = rng.Gaussian(0.0, 0.4);
  }
  if (kind == retrieval::SurrogateKind::kLorentzDot) {
    for (math::Matrix* m : {&users, &items}) {
      for (int r = 0; r < m->rows(); ++r) {
        double sq = 0.0;
        for (int c = 1; c < kDim; ++c) sq += m->At(r, c) * m->At(r, c);
        m->At(r, 0) = std::sqrt(1.0 + sq);
      }
    }
  } else if (kind == retrieval::SurrogateKind::kNegPoincareGamma) {
    for (math::Matrix* m : {&users, &items}) {
      for (int r = 0; r < m->rows(); ++r) {
        double sq = 0.0;
        for (int c = 0; c < kDim; ++c) sq += m->At(r, c) * m->At(r, c);
        const double f = 0.85 / std::max(std::sqrt(sq), 0.85);
        for (int c = 0; c < kDim; ++c) m->At(r, c) *= f;
      }
    }
  }
  return retrieval::EmbeddingScorer(std::move(users), std::move(items), kind);
}

TEST(ScorePrecisionTest, NamesRoundTrip) {
  for (ScorePrecision precision :
       {ScorePrecision::kF64, ScorePrecision::kF32, ScorePrecision::kInt8}) {
    ScorePrecision parsed;
    ASSERT_TRUE(ParseScorePrecision(ScorePrecisionName(precision), &parsed));
    EXPECT_EQ(parsed, precision);
  }
  ScorePrecision unused;
  EXPECT_FALSE(ParseScorePrecision("f16", &unused));
  EXPECT_FALSE(ParseScorePrecision("", &unused));
  EXPECT_FALSE(ParseScorePrecision("F32", &unused));
}

TEST(CompactCatalogTest, BuildRejectsSurrogateFreeAndF64) {
  CompactCatalog catalog;
  RankingSurrogateSpec none;  // kind == kNone
  EXPECT_EQ(catalog.Build(none, ScorePrecision::kF32).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(catalog.built());

  auto scorer = MakeScorer(retrieval::SurrogateKind::kDot, 3);
  EXPECT_EQ(catalog.Build(scorer.RankingSurrogate(), ScorePrecision::kF64)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(catalog.built());

  ASSERT_TRUE(
      catalog.Build(scorer.RankingSurrogate(), ScorePrecision::kF32).ok());
  EXPECT_TRUE(catalog.built());
  EXPECT_EQ(catalog.items(), kItems);
  EXPECT_EQ(catalog.dim(), kDim);
  EXPECT_GT(catalog.ResidentBytes(), 0u);
}

TEST(CompactCatalogTest, NarrowQueryNarrowsEachCoordinateOnce) {
  math::Vec query = {1.0, -2.5, 1e-9, 3.14159265358979};
  math::VecF out;
  CompactCatalog::NarrowQuery(math::ConstSpan(query), &out);
  ASSERT_EQ(out.size(), query.size());
  for (size_t i = 0; i < query.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<float>(query[i]));
  }
}

/// ScoreSubset must be bit-identical to the matching ScoreInto entries
/// for every surrogate kind and both compact precisions — IVF cell scans
/// and HNSW rerank depend on gathered scoring never diverging from the
/// full scan.
TEST(CompactCatalogTest, SubsetScoresBitMatchFullScan) {
  const retrieval::SurrogateKind kinds[] = {
      retrieval::SurrogateKind::kDot, retrieval::SurrogateKind::kLorentzDot,
      retrieval::SurrogateKind::kNegPoincareGamma};
  for (retrieval::SurrogateKind kind : kinds) {
    auto scorer = MakeScorer(kind, 11);
    for (ScorePrecision precision :
         {ScorePrecision::kF32, ScorePrecision::kInt8}) {
      CompactCatalog catalog;
      ASSERT_TRUE(
          catalog.Build(scorer.RankingSurrogate(), precision).ok());
      math::Vec scratch;
      math::VecF query;
      CompactCatalog::NarrowQuery(scorer.RankingQuery(2, &scratch), &query);

      math::VecF full(kItems);
      catalog.ScoreInto(math::ConstSpanF(query), math::SpanF(full));

      const std::vector<int> ids = {0, 149, 7, 7, 64, 1, 98};
      math::VecF subset(ids.size());
      catalog.ScoreSubset(math::ConstSpanF(query), ids,
                          math::SpanF(subset));
      for (size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(subset[i], full[ids[i]])
            << "kind=" << static_cast<int>(kind)
            << " precision=" << ScorePrecisionName(precision)
            << " id=" << ids[i];
      }
    }
  }
}

TEST(CompactCatalogTest, ScoreIntoIsBitDeterministic) {
  auto scorer = MakeScorer(retrieval::SurrogateKind::kDot, 17);
  for (ScorePrecision precision :
       {ScorePrecision::kF32, ScorePrecision::kInt8}) {
    CompactCatalog catalog;
    ASSERT_TRUE(catalog.Build(scorer.RankingSurrogate(), precision).ok());
    math::Vec scratch;
    math::VecF query;
    CompactCatalog::NarrowQuery(scorer.RankingQuery(0, &scratch), &query);
    math::VecF a(kItems), b(kItems);
    catalog.ScoreInto(math::ConstSpanF(query), math::SpanF(a));
    catalog.ScoreInto(math::ConstSpanF(query), math::SpanF(b));
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), sizeof(float) * kItems));
  }
}

/// Float Top-K mirrors the f64 tie-break contract: equal scores rank by
/// ascending item id, so compact rankings are deterministic even when
/// narrowing creates new exact ties.
TEST(TopKFloatTest, EqualScoresPreferSmallerId) {
  const math::VecF scores = {1.0f, 3.0f, 3.0f, -1.0f, 3.0f, 2.0f};
  std::vector<int> scratch, out;
  TopKInto(math::ConstSpanF(scores.data(), scores.size()), 4, &scratch,
           &out);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 4, 5}));
}

TEST(TopKFloatTest, AllTiedRanksByAscendingIdAndHandlesNegInf) {
  math::VecF scores(9, 0.5f);
  scores[3] = -std::numeric_limits<float>::infinity();  // masked item
  std::vector<int> scratch, out;
  TopKInto(math::ConstSpanF(scores.data(), scores.size()), 5, &scratch,
           &out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 4, 5}));
}

TEST(TopKFloatTest, MatchesF64TopKOnNarrowedScores) {
  Rng rng(23);
  math::Vec scores(500);
  for (double& s : scores) s = rng.Gaussian();
  math::VecF scores_f(scores.begin(), scores.end());
  // Widen the narrowed floats back so both inputs are value-identical.
  math::Vec widened(scores_f.begin(), scores_f.end());
  std::vector<int> scratch, from_f64, from_f32;
  TopKInto(math::ConstSpan(widened), 25, &scratch, &from_f64);
  TopKInto(math::ConstSpanF(scores_f.data(), scores_f.size()), 25, &scratch,
           &from_f32);
  EXPECT_EQ(from_f64, from_f32);
}

class CompactScorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig config;
    config.name = "cd-mini";
    config.num_users = 90;
    config.num_items = 120;
    config.seed = 17;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
    core::TrainConfig train;
    train.dim = 16;
    train.layers = 2;
    train.epochs = 8;
    auto model = baselines::MakeModel("LogiRec++", train);
    ASSERT_TRUE(model.ok());
    ASSERT_TRUE((*model)->Fit(dataset_, split_).ok());
    model_ = std::move(*model);
  }

  data::Dataset dataset_;
  data::Split split_;
  std::unique_ptr<core::Recommender> model_;
};

/// The headline correctness contract (DESIGN.md §2i): compact precisions
/// are metric-neutral within a tolerance, measured through the standard
/// Evaluator. f32 narrowing must hold the PR's CI gate (|delta NDCG@20|
/// <= 1e-3 on the 0-1 scale, i.e. 0.1 in the evaluator's percent units);
/// int8 gets a wider but still tight budget.
TEST_F(CompactScorerTest, CompactMetricsTrackF64Oracle) {
  Evaluator evaluator(&split_, dataset_.num_items);
  const EvalResult base = evaluator.Evaluate(*model_);
  ASSERT_GT(base.Get("NDCG@20"), 0.0);

  struct Budget {
    ScorePrecision precision;
    double ndcg_percent;
  };
  for (const Budget& budget : {Budget{ScorePrecision::kF32, 0.1},
                               Budget{ScorePrecision::kInt8, 2.0}}) {
    CompactCatalog catalog;
    ASSERT_TRUE(
        catalog.Build(model_->RankingSurrogate(), budget.precision).ok());
    CompactScorer compact(model_.get(), &catalog);
    const EvalResult res = evaluator.Evaluate(compact);
    EXPECT_NEAR(res.Get("NDCG@20"), base.Get("NDCG@20"),
                budget.ndcg_percent)
        << ScorePrecisionName(budget.precision);
    EXPECT_NEAR(res.Get("Recall@20"), base.Get("Recall@20"),
                2.0 * budget.ndcg_percent)
        << ScorePrecisionName(budget.precision);
  }
}

/// Two evaluations of the same compact scorer produce identical metrics
/// (determinism per precision through the full evaluation stack).
TEST_F(CompactScorerTest, CompactEvaluationIsDeterministic) {
  Evaluator evaluator(&split_, dataset_.num_items);
  for (ScorePrecision precision :
       {ScorePrecision::kF32, ScorePrecision::kInt8}) {
    CompactCatalog catalog;
    ASSERT_TRUE(catalog.Build(model_->RankingSurrogate(), precision).ok());
    CompactScorer compact(model_.get(), &catalog);
    const EvalResult a = evaluator.Evaluate(compact);
    const EvalResult b = evaluator.Evaluate(compact);
    for (const char* key : {"Recall@10", "Recall@20", "NDCG@10", "NDCG@20"}) {
      EXPECT_EQ(a.Get(key), b.Get(key))
          << ScorePrecisionName(precision) << " " << key;
    }
  }
}

/// ScoreItems (the scalar bridge) agrees with ScoreItemsInto in exact
/// mode — CompactScorer is a well-formed Scorer, not just an evaluator
/// shim.
TEST_F(CompactScorerTest, ScalarBridgeMatchesKernelPath) {
  CompactCatalog catalog;
  ASSERT_TRUE(
      catalog.Build(model_->RankingSurrogate(), ScorePrecision::kF32).ok());
  CompactScorer compact(model_.get(), &catalog);
  std::vector<double> scalar;
  compact.ScoreItems(5, &scalar);
  ASSERT_EQ(static_cast<int>(scalar.size()), dataset_.num_items);
  math::Vec kernel(dataset_.num_items);
  compact.ScoreItemsInto(5, math::Span(kernel), ScoreMode::kRanking);
  for (int v = 0; v < dataset_.num_items; ++v) {
    EXPECT_EQ(scalar[v], kernel[v]) << "item " << v;
  }
}

}  // namespace
}  // namespace logirec::eval
