#include "eval/significance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logirec::eval {
namespace {

TEST(WilcoxonTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  const WilcoxonResult result = WilcoxonSignedRank(a, a);
  EXPECT_EQ(result.n_effective, 0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(WilcoxonTest, ClearShiftIsSignificant) {
  Rng rng(1);
  std::vector<double> a(200), b(200);
  for (int i = 0; i < 200; ++i) {
    b[i] = rng.Gaussian(0.0, 1.0);
    a[i] = b[i] + 0.8;  // systematic improvement
  }
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_LT(result.p_value, 0.01);
  EXPECT_GT(result.z_score, 2.0);
}

TEST(WilcoxonTest, NoiseIsNotSignificant) {
  Rng rng(2);
  std::vector<double> a(200), b(200);
  for (int i = 0; i < 200; ++i) {
    a[i] = rng.Gaussian(0.0, 1.0);
    b[i] = rng.Gaussian(0.0, 1.0);
  }
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(WilcoxonTest, TooFewPairsReportsPOne) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {2, 3, 4};
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_EQ(result.n_effective, 3);
}

TEST(WilcoxonTest, HandlesTiesInDifferences) {
  std::vector<double> a = {1, 1, 1, 1, 1, 1, 5, 5};
  std::vector<double> b = {0, 0, 0, 0, 0, 0, 4, 4};
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  // All differences positive -> highly one-sided.
  EXPECT_LT(result.p_value, 0.05);
}

TEST(WilcoxonTest, SymmetryInArguments) {
  Rng rng(3);
  std::vector<double> a(50), b(50);
  for (int i = 0; i < 50; ++i) {
    a[i] = rng.Gaussian(0.5, 1.0);
    b[i] = rng.Gaussian(0.0, 1.0);
  }
  const WilcoxonResult ab = WilcoxonSignedRank(a, b);
  const WilcoxonResult ba = WilcoxonSignedRank(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
  EXPECT_NEAR(ab.z_score, -ba.z_score, 1e-9);
}

}  // namespace
}  // namespace logirec::eval
