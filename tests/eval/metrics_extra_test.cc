#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace logirec::eval {
namespace {

const std::vector<int> kRanked = {5, 3, 9, 1, 7};

TEST(PrecisionTest, CountsHitsOverK) {
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, {5, 9}, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, {5, 9}, 5), 0.4);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, {2}, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, {}, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanked, {5}, 0), 0.0);
}

TEST(HitRateTest, BinaryHitIndicator) {
  EXPECT_DOUBLE_EQ(HitRateAtK(kRanked, {9}, 3), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(kRanked, {9}, 2), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(kRanked, {42}, 5), 0.0);
}

TEST(MrrTest, ReciprocalOfFirstHit) {
  EXPECT_DOUBLE_EQ(Mrr(kRanked, {5}), 1.0);
  EXPECT_DOUBLE_EQ(Mrr(kRanked, {9}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Mrr(kRanked, {9, 5}), 1.0);  // earliest hit wins
  EXPECT_DOUBLE_EQ(Mrr(kRanked, {42}), 0.0);
  EXPECT_DOUBLE_EQ(Mrr({}, {1}), 0.0);
}

TEST(ApTest, AveragePrecisionHandComputed) {
  // Hits at positions 1 and 3 (1-indexed): AP@5 = (1/1 + 2/3)/2.
  EXPECT_NEAR(ApAtK(kRanked, {5, 9}, 5), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  // Perfect ranking: AP = 1.
  EXPECT_DOUBLE_EQ(ApAtK({1, 2}, {1, 2}, 2), 1.0);
  EXPECT_DOUBLE_EQ(ApAtK(kRanked, {}, 5), 0.0);
}

TEST(ApTest, TruncationNormalizesByMinKTruth) {
  // 3 truth items, k=1, hit at rank 1: AP@1 = (1/1)/min(1,3) = 1.
  EXPECT_DOUBLE_EQ(ApAtK({7, 1, 2}, {7, 1, 2}, 1), 1.0);
}

}  // namespace
}  // namespace logirec::eval
