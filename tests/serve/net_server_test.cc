// NetServer + ProtocolSession end to end over real sockets: concurrent
// rankings must match the synchronous Rank() oracle bit for bit, replies
// must come back in request order under pipelining, malformed input must
// answer with an error line instead of dropping the connection, overload
// must shed with `!busy` (never a silent drop), `!swap` must succeed
// mid-load, and --max-sessions semantics must drain deterministically.

#include "serve/net/net_server.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "core/snapshot.h"
#include "data/synthetic.h"
#include "serve/protocol.h"
#include "serve/servable.h"
#include "serve/server.h"
#include "serve/session.h"

namespace logirec::serve {
namespace {

/// Minimal blocking line client for tests.
class TestClient {
 public:
  TestClient() = default;
  ~TestClient() { Close(); }

  void Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr),
              0)
        << std::strerror(errno);
  }

  void Send(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<size_t>(n);
    }
  }

  /// Half-closes the write side (client FIN); reads stay open.
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// Blocking read of the next '\n'-terminated line (stripped). Fails
  /// the test on EOF.
  std::string ReadLine() {
    std::string line;
    EXPECT_TRUE(TryReadLine(&line)) << "unexpected EOF";
    return line;
  }

  /// Like ReadLine but returns false on EOF instead of failing.
  bool TryReadLine(std::string* line) {
    for (;;) {
      const size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        *line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return true;
      }
      char buf[512];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) return false;
      buffer_.append(buf, static_cast<size_t>(n));
    }
  }

  /// Blocks until the server closes the connection; returns any bytes
  /// received after the last ReadLine.
  std::string ReadUntilEof() {
    char buf[512];
    ssize_t n;
    while ((n = ::read(fd_, buf, sizeof buf)) > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
    }
    return buffer_;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig config;
    config.num_users = 40;
    config.num_items = 60;
    config.seed = 21;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }

  void TearDown() override {
    StopServer();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  core::TrainConfig FastConfig(uint64_t seed) const {
    core::TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 4;
    config.seed = seed;
    return config;
  }

  std::unique_ptr<core::Recommender> Train(uint64_t seed) {
    auto model = baselines::MakeModel("BPRMF", FastConfig(seed));
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok());
    return std::move(*model);
  }

  /// Trains a distinct model and writes it as a snapshot for `!swap`.
  std::string WriteSnapshot(uint64_t seed) {
    if (dir_.empty()) {
      dir_ = std::filesystem::temp_directory_path() /
             ("logirec_net_test_" + std::to_string(::getpid()));
      std::filesystem::create_directories(dir_);
    }
    auto model = Train(seed);
    core::SnapshotHeader header;
    header.dim = 8;
    header.layers = 2;
    header.num_users = dataset_.num_users;
    header.num_items = dataset_.num_items;
    const std::string path =
        (std::filesystem::path(dir_) / ("gen" + std::to_string(seed) + ".snap"))
            .string();
    EXPECT_TRUE(core::ModelSnapshot::Write(*model, header, path).ok());
    return path;
  }

  /// Boots a ModelServer + NetServer pair on an ephemeral port and runs
  /// the accept loop on a background thread.
  void StartServer(ServerOptions server_options = {},
                   net::NetServerOptions net_options = {}) {
    model_server_ = std::make_unique<ModelServer>(server_options);
    auto servable = ServableModel::Create(Train(1), dataset_.num_users,
                                          dataset_.num_items, &split_, 1);
    ASSERT_TRUE(servable.ok());
    model_server_->Swap(*servable);

    generation_.store(1);
    context_ = std::make_shared<ProtocolSession::Context>();
    context_->server = model_server_.get();
    context_->split = &split_;
    context_->generation = &generation_;
    context_->factory = baselines::MakeModel;

    net_ = std::make_unique<net::NetServer>(net_options, [this] {
      return std::make_shared<ProtocolSession>(context_);
    });
    ASSERT_TRUE(net_->Start().ok());
    loop_thread_ = std::thread([this] { net_->Run(); });
  }

  void StopServer() {
    if (net_ != nullptr) net_->Shutdown();
    if (loop_thread_.joinable()) loop_thread_.join();
    // Lifetime contract: drain workers (whose completions post through
    // the loop) before the NetServer and its loop are destroyed.
    if (model_server_ != nullptr) model_server_->Stop();
    net_.reset();
    model_server_.reset();
  }

  /// The oracle reply line for a rank request, via the synchronous path.
  std::string ExpectedRankReply(int user, int k, uint64_t generation) {
    std::vector<int> items;
    EXPECT_TRUE(model_server_->Rank(user, k, &items).ok());
    return FormatRanking(user, generation, items);
  }

  data::Dataset dataset_;
  data::Split split_;
  std::string dir_;
  std::unique_ptr<ModelServer> model_server_;
  std::atomic<uint64_t> generation_{1};
  std::shared_ptr<ProtocolSession::Context> context_;
  std::unique_ptr<net::NetServer> net_;
  std::thread loop_thread_;
};

TEST_F(NetServerTest, RankRepliesMatchTheSyncOracle) {
  StartServer();
  TestClient client;
  client.Connect(net_->port());
  for (int user : {0, 7, 39}) {
    client.Send(std::to_string(user) + " 10\n");
    EXPECT_EQ(client.ReadLine(), ExpectedRankReply(user, 10, 1));
  }
  client.Send("!quit\n");
  EXPECT_EQ(client.ReadLine(), "bye");
}

TEST_F(NetServerTest, PollBackendServesIdentically) {
  net::NetServerOptions net_options;
  net_options.backend = net::EventLoop::Backend::kPoll;
  StartServer({}, net_options);
  ASSERT_EQ(net_->backend(), net::EventLoop::Backend::kPoll);
  TestClient client;
  client.Connect(net_->port());
  client.Send("3 5\n");
  EXPECT_EQ(client.ReadLine(), ExpectedRankReply(3, 5, 1));
}

TEST_F(NetServerTest, PartialReadsAcrossWakeupsStillFrame) {
  StartServer();
  TestClient client;
  client.Connect(net_->port());
  // Dribble one request byte by byte: each byte is (at least) one epoll
  // wakeup; the connection must buffer across them.
  const std::string request = "12 10\n";
  for (char c : request) {
    client.Send(std::string(1, c));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(client.ReadLine(), ExpectedRankReply(12, 10, 1));
}

TEST_F(NetServerTest, PipelinedBurstRepliesInRequestOrder) {
  StartServer();
  TestClient client;
  client.Connect(net_->port());
  // One write carrying rank requests with a synchronous !stats wedged in
  // the middle: replies must come back strictly in request order even
  // though ranks complete on worker threads and !stats inline.
  std::string burst;
  for (int user = 0; user < 10; ++user) burst += std::to_string(user) + " 5\n";
  burst += "!stats\n";
  for (int user = 10; user < 20; ++user) {
    burst += std::to_string(user) + " 5\n";
  }
  client.Send(burst);
  for (int user = 0; user < 10; ++user) {
    EXPECT_EQ(client.ReadLine(), ExpectedRankReply(user, 5, 1));
  }
  EXPECT_EQ(client.ReadLine().rfind("stats requests=", 0), 0u);
  for (int user = 10; user < 20; ++user) {
    EXPECT_EQ(client.ReadLine(), ExpectedRankReply(user, 5, 1));
  }
}

TEST_F(NetServerTest, MalformedInputGetsErrorReplyAndConnectionSurvives) {
  StartServer();
  TestClient client;
  client.Connect(net_->port());
  client.Send("not_a_number 10\n");
  const std::string error = client.ReadLine();
  EXPECT_EQ(error.rfind("error InvalidArgument", 0), 0u) << error;
  // Out-of-range user: the request is well-formed, the server answers
  // with the rank error — still no disconnect.
  client.Send("99999 10\n");
  EXPECT_EQ(client.ReadLine().rfind("error InvalidArgument", 0), 0u);
  // The same connection keeps serving.
  client.Send("5 10\n");
  EXPECT_EQ(client.ReadLine(), ExpectedRankReply(5, 10, 1));
}

TEST_F(NetServerTest, OversizedLineGetsOneErrorReplyThenClose) {
  net::NetServerOptions net_options;
  net_options.max_line_bytes = 64;
  StartServer({}, net_options);
  TestClient client;
  client.Connect(net_->port());
  client.Send(std::string(1000, '7'));  // no terminator, over the bound
  const std::string error = client.ReadLine();
  EXPECT_EQ(error.rfind("error OutOfRange", 0), 0u) << error;
  std::string extra;
  EXPECT_FALSE(client.TryReadLine(&extra)) << extra;  // then EOF
}

TEST_F(NetServerTest, UnterminatedFinalLineIsAnsweredAtEof) {
  StartServer();
  TestClient client;
  client.Connect(net_->port());
  client.Send("8 10");  // no trailing newline
  client.ShutdownWrite();
  EXPECT_EQ(client.ReadLine(), ExpectedRankReply(8, 10, 1));
  std::string extra;
  EXPECT_FALSE(client.TryReadLine(&extra));  // server closes after drain
}

TEST_F(NetServerTest, QuitDiscardsTrailingPipelinedInput) {
  StartServer();
  TestClient client;
  client.Connect(net_->port());
  client.Send("1 5\n!quit\n2 5\n3 5\n");
  EXPECT_EQ(client.ReadLine(), ExpectedRankReply(1, 5, 1));
  EXPECT_EQ(client.ReadLine(), "bye");
  std::string extra;
  EXPECT_FALSE(client.TryReadLine(&extra)) << extra;
}

TEST_F(NetServerTest, ConcurrentConnectionsAllMatchTheOracle) {
  StartServer();
  // Precompute oracle replies on this thread (Rank is thread-safe, but
  // keeping the check data-race-trivial keeps TSan output clean).
  std::vector<std::string> expected;
  for (int user = 0; user < dataset_.num_users; ++user) {
    expected.push_back(ExpectedRankReply(user, 10, 1));
  }
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TestClient client;
      client.Connect(net_->port());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int user = (c * 7 + i) % dataset_.num_users;
        client.Send(std::to_string(user) + " 10\n");
        std::string reply;
        if (!client.TryReadLine(&reply) || reply != expected[user]) {
          mismatches.fetch_add(1);
        }
      }
      client.Send("!quit\n");
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(net_->sessions_accepted(), kClients);
}

TEST_F(NetServerTest, MaxSessionsClosesListenerAndRunDrains) {
  net::NetServerOptions net_options;
  net_options.max_sessions = 2;
  StartServer({}, net_options);
  const int port = net_->port();
  TestClient first;
  first.Connect(port);
  first.Send("1 5\n");
  EXPECT_EQ(first.ReadLine(), ExpectedRankReply(1, 5, 1));
  TestClient second;
  second.Connect(port);
  second.Send("2 5\n");
  EXPECT_EQ(second.ReadLine(), ExpectedRankReply(2, 5, 1));
  // Budget spent, but live connections keep serving until they quit.
  first.Send("3 5\n");
  EXPECT_EQ(first.ReadLine(), ExpectedRankReply(3, 5, 1));
  first.Send("!quit\n");
  EXPECT_EQ(first.ReadLine(), "bye");
  second.Send("!quit\n");
  EXPECT_EQ(second.ReadLine(), "bye");
  // Run() must return on its own once both connections drain.
  loop_thread_.join();
  EXPECT_EQ(net_->sessions_accepted(), 2);
}

TEST_F(NetServerTest, OverloadShedsWithBusyInOrderAndNothingIsDropped) {
  // Workers start parked and the admission queue holds exactly one
  // request, so the outcome is deterministic: the first rank is
  // admitted, the next two are shed. The shed replies are only
  // releasable after the first completes (in-order contract), so all
  // three arrive after Resume() as: ok, !busy, !busy.
  ServerOptions server_options;
  server_options.max_queue = 1;
  server_options.start_paused = true;
  StartServer(server_options);
  TestClient client;
  client.Connect(net_->port());
  client.Send("4 10\n5 10\n6 10\n");
  // Give the loop time to push all three through admission while parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  model_server_->Resume();
  EXPECT_EQ(client.ReadLine(), ExpectedRankReply(4, 10, 1));
  EXPECT_EQ(client.ReadLine(), FormatBusy());
  EXPECT_EQ(client.ReadLine(), FormatBusy());
  // Every line got exactly one reply; the counters agree.
  const ServerStats stats = model_server_->Stats();
  EXPECT_EQ(stats.requests_shed, 2);
  // The connection survives shedding.
  client.Send("7 10\n");
  EXPECT_EQ(client.ReadLine(), ExpectedRankReply(7, 10, 1));
}

TEST_F(NetServerTest, SwapUnderLoadCompletesWithZeroFailures) {
  StartServer();
  const std::string snapshot = WriteSnapshot(2);

  std::atomic<bool> stop{false};
  std::atomic<long> ok_replies{0};
  std::atomic<long> bad_replies{0};
  // Two clients hammer ranks; every reply must be an ok line from
  // generation 1 or 2 — never an error, never a dropped reply.
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      TestClient client;
      client.Connect(net_->port());
      int i = 0;
      while (!stop.load()) {
        const int user = (c + 2 * i++) % dataset_.num_users;
        client.Send(std::to_string(user) + " 10\n");
        std::string reply;
        if (!client.TryReadLine(&reply)) {
          bad_replies.fetch_add(1);
          return;
        }
        const std::string prefix =
            "ok user=" + std::to_string(user) + " gen=";
        if (reply.rfind(prefix, 0) != 0) {
          bad_replies.fetch_add(1);
        } else {
          ok_replies.fetch_add(1);
        }
      }
      client.Send("!quit\n");
    });
  }
  while (ok_replies.load() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  TestClient swapper;
  swapper.Connect(net_->port());
  swapper.Send("!swap " + snapshot + "\n");
  const std::string swap_reply = swapper.ReadLine();
  EXPECT_EQ(swap_reply.rfind("ok swapped gen=2", 0), 0u) << swap_reply;
  // Keep load flowing on the new generation before stopping.
  const long after_swap_target = ok_replies.load() + 50;
  while (ok_replies.load() < after_swap_target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& thread : clients) thread.join();
  swapper.Send("!quit\n");
  EXPECT_EQ(swapper.ReadLine(), "bye");

  EXPECT_EQ(bad_replies.load(), 0);
  const ServerStats stats = model_server_->Stats();
  EXPECT_EQ(stats.requests_failed, 0);
  EXPECT_EQ(stats.swaps, 2);  // initial publish + !swap
  // New requests now serve generation 2.
  TestClient fresh;
  fresh.Connect(net_->port());
  fresh.Send("0 10\n");
  EXPECT_EQ(fresh.ReadLine().rfind("ok user=0 gen=2 items=", 0), 0u);
}

TEST_F(NetServerTest, ShutdownWhileClientsAreConnectedStillReturns) {
  StartServer();
  TestClient idle;
  idle.Connect(net_->port());
  TestClient active;
  active.Connect(net_->port());
  active.Send("1 5\n");
  EXPECT_EQ(active.ReadLine(), ExpectedRankReply(1, 5, 1));
  net_->Shutdown();
  // Shutdown closes the listener and the connections; both clients see
  // EOF and Run() returns.
  std::string line;
  EXPECT_FALSE(idle.TryReadLine(&line));
  EXPECT_FALSE(active.TryReadLine(&line));
  loop_thread_.join();
}

}  // namespace
}  // namespace logirec::serve
