// Serving-layer retrieval parity: a generation restored with an ANN index
// at full-coverage parameters must rank exactly like the synchronous
// exact path — same items, same order, seen-item masking included — for
// dot-space, Euclidean, and both hyperbolic model families. Also pins the
// failure mode for surrogate-free models and the index-through-hot-swap
// flow.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "core/snapshot.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "serve/servable.h"
#include "serve/server.h"

namespace logirec::serve {
namespace {

class RetrievalParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_retrieval_parity_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 90;
    config.seed = 7;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  core::TrainConfig FastConfig() const {
    core::TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 5;
    return config;
  }

  std::string WriteTrainedSnapshot(const std::string& name) {
    const core::TrainConfig config = FastConfig();
    auto model = baselines::MakeModel(name, config);
    EXPECT_TRUE(model.ok()) << name;
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok()) << name;
    core::SnapshotHeader header;
    header.dim = config.dim;
    header.layers = config.layers;
    header.num_users = dataset_.num_users;
    header.num_items = dataset_.num_items;
    const std::string path = dir_ + "/" + name + ".snap";
    EXPECT_TRUE(core::ModelSnapshot::Write(**model, header, path).ok())
        << name;
    return path;
  }

  /// Full-coverage configurations: every candidate generation sees the
  /// whole catalog, so ANN output must equal the exact path bit-for-bit.
  static retrieval::RetrievalOptions CoveringIvf() {
    retrieval::RetrievalOptions options;
    options.kind = retrieval::RetrievalKind::kIvf;
    options.ivf.cells = 6;
    options.ivf.nprobe = 6;
    return options;
  }
  retrieval::RetrievalOptions CoveringHnsw() const {
    retrieval::RetrievalOptions options;
    options.kind = retrieval::RetrievalKind::kHnsw;
    options.hnsw.M = 8;
    options.hnsw.ef_search = dataset_.num_items;
    return options;
  }

  /// The synchronous oracle: exact scores, seen masking, TopK.
  std::vector<int> ExactRank(const ServableModel& servable, int user,
                             int k) const {
    std::vector<double> scores(servable.num_items());
    servable.scorer().ScoreItemsInto(user, math::Span(scores),
                                     eval::ScoreMode::kExact);
    servable.MaskSeen(user, math::Span(scores));
    return eval::TopK(scores, k);
  }

  void ExpectParity(const std::string& name,
                    const retrieval::RetrievalOptions& retrieval) {
    const std::string path = WriteTrainedSnapshot(name);
    auto servable = ServableModel::FromSnapshot(
        path, baselines::MakeModel, &split_, /*generation=*/1, retrieval);
    ASSERT_TRUE(servable.ok()) << name << ": "
                               << servable.status().ToString();
    ASSERT_TRUE((*servable)->retrieval_enabled()) << name;
    EXPECT_EQ((*servable)->retrieval_kind(), retrieval.kind) << name;
    eval::RetrieveScratch scratch;
    std::vector<int> got;
    for (int u = 0; u < dataset_.num_users; ++u) {
      (*servable)->RetrieveRanked(u, 10, &scratch, &got);
      EXPECT_EQ(got, ExactRank(**servable, u, 10))
          << name << " user " << u;
    }
  }

  std::string dir_;
  data::Dataset dataset_;
  data::Split split_;
};

TEST_F(RetrievalParityTest, IvfMatchesExactRankAcrossGeometries) {
  // One model per surrogate family: dot+bias, translated Euclidean,
  // squared Euclidean, Poincare gamma, Lorentz inner product, and the
  // paper model itself.
  for (const char* name :
       {"BPRMF", "TransC", "CML", "HyperML", "HGCF", "LogiRec"}) {
    ExpectParity(name, CoveringIvf());
  }
}

TEST_F(RetrievalParityTest, HnswMatchesExactRankAcrossGeometries) {
  for (const char* name :
       {"BPRMF", "TransC", "CML", "HyperML", "HGCF", "LogiRec"}) {
    ExpectParity(name, CoveringHnsw());
  }
}

TEST_F(RetrievalParityTest, MaskedRetrievalNeverReturnsSeenItems) {
  const std::string path = WriteTrainedSnapshot("HGCF");
  auto servable = ServableModel::FromSnapshot(
      path, baselines::MakeModel, &split_, /*generation=*/1, CoveringIvf());
  ASSERT_TRUE(servable.ok());
  std::vector<double> scores((*servable)->num_items(), 0.0);
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  for (int u = 0; u < dataset_.num_users; ++u) {
    if ((*servable)->SeenCount(u) == 0) continue;
    // MaskSeen marks the forbidden set; retrieval must avoid all of it.
    std::fill(scores.begin(), scores.end(), 0.0);
    (*servable)->MaskSeen(u, math::Span(scores));
    (*servable)->RetrieveRanked(u, 10, &scratch, &got);
    for (int v : got) {
      EXPECT_NE(scores[v], -std::numeric_limits<double>::infinity())
          << "user " << u << " item " << v;
    }
  }
}

TEST_F(RetrievalParityTest, ServerWorkersUseTheIndexAndAgreeWithRank) {
  const std::string path = WriteTrainedSnapshot("LogiRec");
  auto servable = ServableModel::FromSnapshot(
      path, baselines::MakeModel, &split_, /*generation=*/1, CoveringHnsw());
  ASSERT_TRUE(servable.ok());
  ServerOptions options;
  options.num_threads = 2;
  ModelServer server(options);
  server.Swap(*servable);
  for (int u = 0; u < dataset_.num_users; u += 5) {
    std::vector<int> sync;
    ASSERT_TRUE(server.Rank(u, 10, &sync).ok());
    RankResponse async = server.Submit(u, 10).get();
    ASSERT_TRUE(async.status.ok());
    EXPECT_EQ(async.items, sync) << "user " << u;
  }
  server.Stop();
}

TEST_F(RetrievalParityTest, SurrogateFreeModelFailsToBuildAnIndex) {
  const std::string path = WriteTrainedSnapshot("NeuMF");
  auto servable = ServableModel::FromSnapshot(
      path, baselines::MakeModel, &split_, /*generation=*/1, CoveringIvf());
  ASSERT_FALSE(servable.ok());
  EXPECT_EQ(servable.status().code(), StatusCode::kFailedPrecondition);
  // The same snapshot serves fine exactly.
  auto exact = ServableModel::FromSnapshot(path, baselines::MakeModel,
                                           &split_, /*generation=*/1);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE((*exact)->retrieval_enabled());
  EXPECT_EQ((*exact)->retrieval_kind(), retrieval::RetrievalKind::kExact);
}

TEST_F(RetrievalParityTest, DefaultOptionsKeepExactServing) {
  const std::string path = WriteTrainedSnapshot("BPRMF");
  auto servable = ServableModel::FromSnapshot(path, baselines::MakeModel,
                                              &split_, /*generation=*/1);
  ASSERT_TRUE(servable.ok());
  EXPECT_FALSE((*servable)->retrieval_enabled());
  // RetrieveRanked still works — it falls back to the exact scan.
  eval::RetrieveScratch scratch;
  std::vector<int> got;
  (*servable)->RetrieveRanked(0, 10, &scratch, &got);
  EXPECT_EQ(got, ExactRank(**servable, 0, 10));
}

}  // namespace
}  // namespace logirec::serve
