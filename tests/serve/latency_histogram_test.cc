// LatencyHistogram: bucket geometry invariants, percentile accuracy
// against a sorted-vector oracle (the fixed ring it replaced was exact
// but windowed; the histogram must stay within its ~3% relative-error
// bound over the full stream), and data-race-free concurrent recording.

#include "serve/latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace logirec::serve {
namespace {

double OraclePercentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const size_t total = values.size();
  size_t rank = static_cast<size_t>(std::ceil(p * total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  return values[rank - 1];
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndExhaustive) {
  int prev = LatencyHistogram::BucketIndex(0);
  EXPECT_EQ(prev, 0);
  for (uint64_t us = 1; us < (1u << 20); us = us + 1 + us / 64) {
    const int index = LatencyHistogram::BucketIndex(us);
    ASSERT_GE(index, prev) << "us=" << us;
    ASSERT_LT(index, LatencyHistogram::num_buckets()) << "us=" << us;
    prev = index;
  }
  // The saturation cap lands in a valid bucket too.
  EXPECT_LT(LatencyHistogram::BucketIndex(~0ull),
            LatencyHistogram::num_buckets());
}

TEST(LatencyHistogramTest, BucketMidIsInsideItsOwnBucket) {
  // Buckets past the saturation cap are never produced by BucketIndex,
  // so only reachable buckets must round-trip.
  const int top = LatencyHistogram::BucketIndex(~0ull);
  for (int index = 0; index <= top; index += 7) {
    const double mid = LatencyHistogram::BucketMidUs(index);
    EXPECT_EQ(LatencyHistogram::BucketIndex(
                  static_cast<uint64_t>(std::llround(mid))),
              index)
        << "index=" << index << " mid=" << mid;
  }
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Below 64us every microsecond has its own bucket, so percentiles of
  // small samples are exact.
  LatencyHistogram hist;
  for (int us = 1; us <= 10; ++us) hist.Record(us / 1000.0);
  EXPECT_NEAR(hist.PercentileMs(0.5), 0.005, 1e-9);   // the 5us bucket
  EXPECT_NEAR(hist.PercentileMs(1.0), 0.010, 1e-9);   // the 10us bucket
  const auto snap = hist.Take();
  EXPECT_EQ(snap.count, 10);
  EXPECT_NEAR(snap.max_ms, 0.010, 1e-9);  // max is tracked exactly
}

TEST(LatencyHistogramTest, PercentilesWithinRelativeErrorBound) {
  // Log-normal-ish latencies spanning ~4 decades — the regime the
  // serving bench actually produces under overload.
  LatencyHistogram hist;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double u = Rng::MixSeed(99, i) % 1000000 / 1000000.0;
    const double ms = 0.05 * std::exp(6.0 * u);  // 0.05ms .. ~20ms
    values.push_back(ms);
    hist.Record(ms);
  }
  for (const double p : {0.5, 0.95, 0.99}) {
    const double want = OraclePercentile(values, p);
    const double got = hist.PercentileMs(p);
    EXPECT_NEAR(got, want, 0.035 * want) << "p=" << p;
  }
  const auto snap = hist.Take();
  EXPECT_EQ(snap.count, 20000);
  const double want_max = *std::max_element(values.begin(), values.end());
  EXPECT_NEAR(snap.max_ms, want_max, 1e-3);
  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_NEAR(snap.mean_ms, sum / values.size(), 0.01 * sum / values.size());
}

TEST(LatencyHistogramTest, NonPositiveAndHugeValuesSaturate) {
  LatencyHistogram hist;
  hist.Record(0.0);
  hist.Record(-3.0);
  hist.Record(1e12);  // way past the 2^30us cap
  const auto snap = hist.Take();
  EXPECT_EQ(snap.count, 3);
  EXPECT_GT(snap.p99_ms, 1000.0);       // top bucket, minutes range
  EXPECT_LT(snap.p50_ms, 0.001);        // bottom bucket
}

TEST(LatencyHistogramTest, ConcurrentRecordersLoseNothing) {
  // 4 threads x 50k records; the count must be exact (relaxed fetch_add
  // on distinct atomics) and the histogram race-free under TSan.
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(0.1 + (Rng::MixSeed(t, i) % 100) * 0.05);
      }
    });
  }
  // Concurrent snapshots must be safe (telemetry polls while serving).
  for (int i = 0; i < 50; ++i) (void)hist.Take();
  for (auto& thread : threads) thread.join();
  const auto snap = hist.Take();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_GE(snap.p50_ms, 0.1);
  EXPECT_LE(snap.max_ms, 5.2);
}

}  // namespace
}  // namespace logirec::serve
