// ModelServer: batched responses must be bit-identical to the synchronous
// exact path and to a hand-rolled evaluator-style ranking; the protocol
// codec must round-trip every request form.

#include "serve/server.h"

#include <atomic>
#include <future>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "serve/protocol.h"
#include "serve/servable.h"

namespace logirec::serve {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig config;
    config.num_users = 50;
    config.num_items = 70;
    config.seed = 11;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }

  std::shared_ptr<const ServableModel> TrainServable(
      const std::string& name, uint64_t generation,
      core::Recommender** model_out = nullptr) {
    core::TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 5;
    config.seed = 3 + generation;  // distinct weights per generation
    auto model = baselines::MakeModel(name, config);
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok());
    if (model_out != nullptr) *model_out = model->get();
    auto servable =
        ServableModel::Create(std::move(*model), dataset_.num_users,
                              dataset_.num_items, &split_, generation);
    EXPECT_TRUE(servable.ok()) << servable.status().ToString();
    return *servable;
  }

  /// Evaluator-style reference: exact scores, train+validation masked.
  std::vector<int> ReferenceTopK(const core::Recommender& model, int user,
                                 int k) const {
    std::vector<double> scores;
    model.ScoreItems(user, &scores);
    constexpr double kNegInf = -std::numeric_limits<double>::infinity();
    for (int v : split_.train[user]) scores[v] = kNegInf;
    for (int v : split_.validation[user]) scores[v] = kNegInf;
    return eval::TopK(scores, k);
  }

  data::Dataset dataset_;
  data::Split split_;
};

TEST_F(ServerTest, RankWithoutModelFails) {
  ModelServer server;
  std::vector<int> items;
  const Status st = server.Rank(0, 10, &items);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  auto response = server.Submit(0, 10).get();
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, SyncAndBatchedPathsMatchTheEvaluatorRanking) {
  // HGCF exercises the Lorentz surrogate scoring; BPRMF the dot-product
  // path. Both serving paths must agree with the exact reference.
  for (const char* name : {"BPRMF", "HGCF", "LogiRec"}) {
    core::Recommender* raw = nullptr;
    ModelServer server;
    server.Swap(TrainServable(name, 1, &raw));
    for (int user : {0, 7, 49}) {
      const std::vector<int> want = ReferenceTopK(*raw, user, 10);
      std::vector<int> sync_items;
      ASSERT_TRUE(server.Rank(user, 10, &sync_items).ok()) << name;
      EXPECT_EQ(sync_items, want) << name << " user " << user << " (sync)";
      auto response = server.Submit(user, 10).get();
      ASSERT_TRUE(response.status.ok()) << name;
      EXPECT_EQ(response.items, want)
          << name << " user " << user << " (batched)";
      EXPECT_EQ(response.generation, 1u);
    }
  }
}

TEST_F(ServerTest, SeenItemsAreNeverRecommended) {
  ModelServer server;
  server.Swap(TrainServable("BPRMF", 1));
  for (int user = 0; user < dataset_.num_users; ++user) {
    auto response = server.Submit(user, 20).get();
    ASSERT_TRUE(response.status.ok());
    for (int item : response.items) {
      for (int seen : split_.train[user]) EXPECT_NE(item, seen);
      for (int seen : split_.validation[user]) EXPECT_NE(item, seen);
    }
  }
}

TEST_F(ServerTest, ManySubmissionsComplete) {
  ServerOptions options;
  options.max_batch = 8;
  ModelServer server(options);
  server.Swap(TrainServable("BPRMF", 1));
  std::vector<std::future<RankResponse>> futures;
  const int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(i % dataset_.num_users, 10));
  }
  for (auto& f : futures) {
    const RankResponse response = f.get();
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(static_cast<int>(response.items.size()), 10);
  }
  const ServerStats stats = server.Stats();
  EXPECT_GE(stats.requests_completed, kRequests);
  EXPECT_GE(stats.batches_dispatched, kRequests / options.max_batch);
  EXPECT_LE(stats.max_batch_size, options.max_batch);
  EXPECT_EQ(stats.requests_failed, 0);
}

TEST_F(ServerTest, OutOfRangeUserFailsBothPaths) {
  ModelServer server;
  server.Swap(TrainServable("BPRMF", 1));
  std::vector<int> items;
  EXPECT_EQ(server.Rank(dataset_.num_users, 10, &items).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Submit(-1, 10).get().status.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, SwapRetiresTheOldGenerationForNewRequests) {
  core::Recommender* first = nullptr;
  core::Recommender* second = nullptr;
  ModelServer server;
  server.Swap(TrainServable("BPRMF", 1, &first));
  const std::vector<int> want_first = ReferenceTopK(*first, 3, 10);
  auto before = server.Submit(3, 10).get();
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.generation, 1u);
  EXPECT_EQ(before.items, want_first);

  EXPECT_EQ(server.Swap(TrainServable("BPRMF", 2, &second)), 2u);
  const std::vector<int> want_second = ReferenceTopK(*second, 3, 10);
  auto after = server.Submit(3, 10).get();
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.generation, 2u);
  EXPECT_EQ(after.items, want_second);
  EXPECT_EQ(server.Stats().swaps, 2);
}

TEST_F(ServerTest, SubmitAfterStopFailsImmediately) {
  ModelServer server;
  server.Swap(TrainServable("BPRMF", 1));
  server.Stop();
  auto response = server.Submit(0, 10).get();
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, TrySubmitShedsAtMaxQueueAndNeverInvokesTheCallback) {
  // One queue slot, workers parked: the first request is admitted, every
  // further one is shed immediately with kUnavailable — deterministic
  // backpressure, no waiting, no callback for rejected work.
  ServerOptions options;
  options.max_queue = 1;
  options.start_paused = true;
  core::Recommender* raw = nullptr;
  ModelServer server(options);
  server.Swap(TrainServable("BPRMF", 1, &raw));
  auto first = std::make_shared<std::promise<RankResponse>>();
  ASSERT_TRUE(server
                  .TrySubmit(2, 10,
                             [first](RankResponse response) {
                               first->set_value(std::move(response));
                             })
                  .ok());
  std::atomic<bool> shed_callback_fired{false};
  for (int i = 0; i < 3; ++i) {
    const Status shed = server.TrySubmit(
        3, 10, [&](RankResponse) { shed_callback_fired.store(true); });
    EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(server.Stats().requests_shed, 3);
  server.Resume();
  const RankResponse response = first->get_future().get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.items, ReferenceTopK(*raw, 2, 10));
  EXPECT_FALSE(shed_callback_fired.load());
}

TEST_F(ServerTest, StopCompletesEveryAcceptedRequest) {
  // Accepted means answered: requests sitting in a paused queue still
  // get their callbacks when Stop() drains it.
  ServerOptions options;
  options.start_paused = true;
  ModelServer server(options);
  server.Swap(TrainServable("BPRMF", 1));
  std::atomic<int> completed{0};
  const int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(server
                    .TrySubmit(i % dataset_.num_users, 10,
                               [&](RankResponse response) {
                                 EXPECT_TRUE(response.status.ok());
                                 completed.fetch_add(1);
                               })
                    .ok());
  }
  EXPECT_EQ(completed.load(), 0);  // still parked
  server.Stop();
  EXPECT_EQ(completed.load(), kRequests);
  // And after Stop, TrySubmit rejects without touching the callback.
  EXPECT_EQ(server.TrySubmit(0, 10, [](RankResponse) {}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, StatsExposeLatencyPercentiles) {
  ModelServer server;
  server.Swap(TrainServable("BPRMF", 1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(server.Submit(i % dataset_.num_users, 10).get().status.ok());
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.latency_count, 100);
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms * 1.05);
  EXPECT_GT(stats.mean_ms, 0.0);
}

TEST(ProtocolTest, ParsesRankRequests) {
  auto r = ParseRequestLine("17 5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, Request::Kind::kRank);
  EXPECT_EQ(r->user, 17);
  EXPECT_EQ(r->k, 5);
  auto bare = ParseRequestLine("  42  ");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->user, 42);
  EXPECT_EQ(bare->k, 0);  // server default
}

TEST(ProtocolTest, ParsesCommands) {
  EXPECT_EQ(ParseRequestLine("!quit")->kind, Request::Kind::kQuit);
  EXPECT_EQ(ParseRequestLine("!stats")->kind, Request::Kind::kStats);
  auto swap = ParseRequestLine("!swap /tmp/model.snap");
  ASSERT_TRUE(swap.ok());
  EXPECT_EQ(swap->kind, Request::Kind::kSwap);
  EXPECT_EQ(swap->path, "/tmp/model.snap");
}

TEST(ProtocolTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRequestLine("not_a_number").ok());
  EXPECT_FALSE(ParseRequestLine("3 -1").ok());
  EXPECT_FALSE(ParseRequestLine("1 2 3").ok());
  EXPECT_FALSE(ParseRequestLine("!swap").ok());
  EXPECT_FALSE(ParseRequestLine("!frobnicate").ok());
  // Blank lines and comments are skippable, not errors per se.
  EXPECT_EQ(ParseRequestLine("").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseRequestLine("# hi").status().code(),
            StatusCode::kNotFound);
}

TEST(ProtocolTest, FormatsResponses) {
  EXPECT_EQ(FormatRanking(4, 9, {3, 1, 2}), "ok user=4 gen=9 items=3,1,2");
  EXPECT_EQ(FormatRanking(0, 1, {}), "ok user=0 gen=1 items=");
  const std::string err =
      FormatError(Status::InvalidArgument("bad user id: x"));
  EXPECT_NE(err.find("InvalidArgument"), std::string::npos);
  EXPECT_NE(err.find("bad user id"), std::string::npos);
}

}  // namespace
}  // namespace logirec::serve
