// Compact serving end to end: precision plumbing through
// ServableModel::FromSnapshot, idempotence of the snapshot-dtype /
// serving-precision matrix (an f32-dtype file served at f32 ranks
// exactly like an f64 file served at f32, same for int8 — the resident
// compact state is identical either way), worker-count determinism of
// the server at threads {1, 2, 8}, snapshot provenance surfaced through
// ServerStats, and the !stats wire format.

#include <algorithm>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "core/snapshot.h"
#include "data/synthetic.h"
#include "serve/protocol.h"
#include "serve/servable.h"
#include "serve/server.h"

namespace logirec::serve {
namespace {

class CompactServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_compact_serving_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 90;
    config.seed = 7;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Trains `name` once (cached) and writes a snapshot at `dtype`.
  std::string WriteSnapshot(const std::string& name,
                            core::SnapshotDtype dtype) {
    core::TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 5;
    if (model_ == nullptr) {
      auto model = baselines::MakeModel(name, config);
      EXPECT_TRUE(model.ok()) << name;
      EXPECT_TRUE((*model)->Fit(dataset_, split_).ok()) << name;
      model_ = std::move(*model);
    }
    core::SnapshotHeader header;
    header.dim = config.dim;
    header.layers = config.layers;
    header.num_users = dataset_.num_users;
    header.num_items = dataset_.num_items;
    const std::string path =
        dir_ + "/" + name + "_" + core::SnapshotDtypeName(dtype) + ".snap";
    EXPECT_TRUE(
        core::ModelSnapshot::Write(*model_, header, path, dtype).ok());
    return path;
  }

  std::shared_ptr<const ServableModel> Restore(
      const std::string& path, eval::ScorePrecision precision,
      uint64_t generation = 1) {
    retrieval::RetrievalOptions options;
    options.precision = precision;
    auto servable = ServableModel::FromSnapshot(
        path, baselines::MakeModel, &split_, generation, options);
    EXPECT_TRUE(servable.ok()) << servable.status().ToString();
    return *servable;
  }

  std::vector<std::vector<int>> RankAll(const ServableModel& servable,
                                        int k) {
    eval::RetrieveScratch scratch;
    std::vector<std::vector<int>> lists(dataset_.num_users);
    for (int u = 0; u < dataset_.num_users; ++u) {
      servable.RetrieveRanked(u, k, &scratch, &lists[u]);
    }
    return lists;
  }

  std::string dir_;
  data::Dataset dataset_;
  data::Split split_;
  std::unique_ptr<core::Recommender> model_;
};

TEST_F(CompactServingTest, CompactPrecisionEnablesCompactExactPath) {
  const std::string path =
      WriteSnapshot("LogiRec++", core::SnapshotDtype::kF64);
  auto f64 = Restore(path, eval::ScorePrecision::kF64);
  EXPECT_FALSE(f64->compact_enabled());
  EXPECT_EQ(f64->precision(), eval::ScorePrecision::kF64);

  auto f32 = Restore(path, eval::ScorePrecision::kF32);
  EXPECT_TRUE(f32->compact_enabled());
  EXPECT_FALSE(f32->retrieval_enabled());
  EXPECT_EQ(f32->precision(), eval::ScorePrecision::kF32);
  EXPECT_LT(f32->ResidentScoringBytes(), f64->ResidentScoringBytes());

  auto i8 = Restore(path, eval::ScorePrecision::kInt8);
  EXPECT_TRUE(i8->compact_enabled());
  EXPECT_LT(i8->ResidentScoringBytes(), f32->ResidentScoringBytes());
}

/// The dtype/precision idempotence matrix: serving precision P from an
/// f64 file and from a P-dtype file must rank identically for every
/// user — narrowing (f32) and quantization (int8) are idempotent, so
/// the resident compact catalog is the same object either way. This is
/// what makes `--save-model` conversion safe: converting a snapshot to
/// the serving dtype changes bytes on disk, never rankings.
TEST_F(CompactServingTest, CompactDtypeSnapshotServesIdenticallyToF64File) {
  const std::string f64_path =
      WriteSnapshot("LogiRec++", core::SnapshotDtype::kF64);
  const std::string f32_path =
      WriteSnapshot("LogiRec++", core::SnapshotDtype::kF32);
  const std::string i8_path =
      WriteSnapshot("LogiRec++", core::SnapshotDtype::kInt8);

  auto from_f64 = Restore(f64_path, eval::ScorePrecision::kF32);
  auto from_f32 = Restore(f32_path, eval::ScorePrecision::kF32);
  EXPECT_EQ(RankAll(*from_f64, 10), RankAll(*from_f32, 10));
  EXPECT_EQ(from_f32->snapshot_dtype(), core::SnapshotDtype::kF32);

  // Int8 cannot promise ranking equality against the f64 file: the int8
  // snapshot quantizes the USER table too, so ranking queries differ by
  // up to half a quantization step and near-ties may flip. The resident
  // item catalog is still bit-identical (pinned by the byte-identical
  // rewrite test in snapshot_compact_test), so the two paths must agree
  // on the overwhelming majority of each top-10.
  auto i8_from_f64 = Restore(f64_path, eval::ScorePrecision::kInt8);
  auto i8_from_i8 = Restore(i8_path, eval::ScorePrecision::kInt8);
  const auto a = RankAll(*i8_from_f64, 10);
  const auto b = RankAll(*i8_from_i8, 10);
  long hits = 0, total = 0;
  for (int u = 0; u < dataset_.num_users; ++u) {
    for (int item : a[u]) {
      hits += std::count(b[u].begin(), b[u].end(), item);
    }
    total += static_cast<long>(a[u].size());
  }
  EXPECT_GT(total, 0);
  EXPECT_GE(static_cast<double>(hits) / total, 0.95);
}

/// Two restores of the same file at the same precision rank identically
/// (compact serving is deterministic), and distinct precisions rank
/// self-consistently across repeated calls.
TEST_F(CompactServingTest, RestoreIsDeterministicPerPrecision) {
  const std::string path =
      WriteSnapshot("HGCF", core::SnapshotDtype::kF64);
  for (eval::ScorePrecision precision :
       {eval::ScorePrecision::kF32, eval::ScorePrecision::kInt8}) {
    auto a = Restore(path, precision);
    auto b = Restore(path, precision, /*generation=*/2);
    EXPECT_EQ(RankAll(*a, 10), RankAll(*b, 10))
        << eval::ScorePrecisionName(precision);
  }
}

/// The server returns identical compact rankings at 1, 2, and 8 worker
/// threads — the acceptance-gate determinism check at the serving layer.
TEST_F(CompactServingTest, ServerRankingsIdenticalAcrossWorkerCounts) {
  const std::string path =
      WriteSnapshot("LogiRec++", core::SnapshotDtype::kF32);
  for (eval::ScorePrecision precision :
       {eval::ScorePrecision::kF32, eval::ScorePrecision::kInt8}) {
    std::vector<std::vector<int>> baseline;
    for (int threads : {1, 2, 8}) {
      ServerOptions options;
      options.num_threads = threads;
      ModelServer server(options);
      server.Swap(Restore(path, precision));
      std::vector<std::future<RankResponse>> futures;
      for (int u = 0; u < dataset_.num_users; ++u) {
        futures.push_back(server.Submit(u, 10));
      }
      std::vector<std::vector<int>> lists;
      for (auto& f : futures) {
        RankResponse response = f.get();
        ASSERT_TRUE(response.status.ok());
        lists.push_back(std::move(response.items));
      }
      if (baseline.empty()) {
        baseline = std::move(lists);
      } else {
        EXPECT_EQ(lists, baseline)
            << eval::ScorePrecisionName(precision) << " threads=" << threads;
      }
    }
  }
}

TEST_F(CompactServingTest, StatsCarrySnapshotProvenance) {
  const std::string path =
      WriteSnapshot("LogiRec++", core::SnapshotDtype::kInt8);
  auto servable = Restore(path, eval::ScorePrecision::kInt8);
  EXPECT_EQ(servable->snapshot_bytes(), std::filesystem::file_size(path));
  EXPECT_GT(servable->snapshot_load_ms(), 0.0);

  ModelServer server;
  // Before the first swap the precision fields are empty and FormatStats
  // must omit the whole provenance clause.
  EXPECT_EQ(FormatStats(server.Stats()).find("dtype="), std::string::npos);

  server.Swap(servable);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.snapshot_dtype, "int8");
  EXPECT_EQ(stats.precision, "int8");
  EXPECT_EQ(stats.resident_bytes, servable->ResidentScoringBytes());
  EXPECT_EQ(stats.snapshot_bytes, servable->snapshot_bytes());
  EXPECT_GT(stats.snapshot_load_ms, 0.0);

  const std::string line = FormatStats(stats);
  EXPECT_EQ(line.rfind("stats requests=", 0), 0u) << line;
  for (const char* field :
       {"dtype=int8", "precision=int8", "resident_bytes=", "snapshot_bytes=",
        "load_ms="}) {
    EXPECT_NE(line.find(field), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace logirec::serve
