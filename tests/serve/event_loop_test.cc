// EventLoop: identical semantics on both backends — readiness dispatch
// over pipes, interest-set updates, Remove-inside-callback safety, and
// thread-safe Post()/Stop() via the self-pipe.

#include "serve/net/event_loop.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace logirec::serve::net {
namespace {

void MakeNonBlocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
    MakeNonBlocking(read_fd);
    MakeNonBlocking(write_fd);
  }
  ~Pipe() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
};

class EventLoopTest
    : public ::testing::TestWithParam<EventLoop::Backend> {};

TEST_P(EventLoopTest, BackendResolves) {
  EventLoop loop(GetParam());
  EXPECT_NE(loop.backend(), EventLoop::Backend::kAuto);
#if defined(__linux__)
  if (GetParam() == EventLoop::Backend::kEpoll) {
    EXPECT_EQ(loop.backend(), EventLoop::Backend::kEpoll);
  }
#endif
  if (GetParam() == EventLoop::Backend::kPoll) {
    EXPECT_EQ(loop.backend(), EventLoop::Backend::kPoll);
  }
}

TEST_P(EventLoopTest, DispatchesReadableAndStops) {
  EventLoop loop(GetParam());
  Pipe pipe;
  std::string received;
  ASSERT_TRUE(loop.Add(pipe.read_fd, /*want_read=*/true,
                       /*want_write=*/false,
                       [&](const EventLoop::Event& event) {
                         ASSERT_TRUE(event.readable);
                         char buf[64];
                         ssize_t n;
                         while ((n = ::read(pipe.read_fd, buf, sizeof buf)) >
                                0) {
                           received.append(buf, n);
                         }
                         if (received.size() >= 5) loop.Stop();
                       })
                  .ok());
  ASSERT_EQ(::write(pipe.write_fd, "hello", 5), 5);
  loop.Run();
  EXPECT_EQ(received, "hello");
}

TEST_P(EventLoopTest, WriteInterestFiresOnlyWhenArmed) {
  // An empty pipe is immediately writable, so a want_write registration
  // fires at once; after Update() drops the interest the loop goes
  // quiet (we prove it by stopping from a posted task, not the fd).
  EventLoop loop(GetParam());
  Pipe pipe;
  int writable_fires = 0;
  ASSERT_TRUE(loop.Add(pipe.write_fd, /*want_read=*/false,
                       /*want_write=*/true,
                       [&](const EventLoop::Event& event) {
                         EXPECT_TRUE(event.writable);
                         ++writable_fires;
                         ASSERT_TRUE(loop.Update(pipe.write_fd,
                                                 /*want_read=*/false,
                                                 /*want_write=*/false)
                                         .ok());
                         loop.Post([&] { loop.Stop(); });
                       })
                  .ok());
  loop.Run();
  EXPECT_EQ(writable_fires, 1);
}

TEST_P(EventLoopTest, RemoveInsideCallbackIsSafe) {
  // Two fds fire in the same wake; the first callback removes BOTH
  // registrations. The loop must not dispatch to the dangling one.
  EventLoop loop(GetParam());
  Pipe a;
  Pipe b;
  std::atomic<int> calls{0};
  auto remove_both = [&](const EventLoop::Event&) {
    calls.fetch_add(1);
    loop.Remove(a.read_fd);
    loop.Remove(b.read_fd);
    loop.Stop();
  };
  ASSERT_TRUE(loop.Add(a.read_fd, true, false, remove_both).ok());
  ASSERT_TRUE(loop.Add(b.read_fd, true, false, remove_both).ok());
  ASSERT_EQ(::write(a.write_fd, "x", 1), 1);
  ASSERT_EQ(::write(b.write_fd, "x", 1), 1);
  loop.Run();
  EXPECT_EQ(calls.load(), 1);
}

TEST_P(EventLoopTest, DuplicateAddFails) {
  EventLoop loop(GetParam());
  Pipe pipe;
  ASSERT_TRUE(
      loop.Add(pipe.read_fd, true, false, [](const EventLoop::Event&) {})
          .ok());
  EXPECT_EQ(loop.Add(pipe.read_fd, true, false,
                     [](const EventLoop::Event&) {})
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(loop.Update(12345, true, false).code(), StatusCode::kNotFound);
}

TEST_P(EventLoopTest, PostFromOtherThreadsRunsOnLoopThread) {
  EventLoop loop(GetParam());
  const std::thread::id loop_thread = std::this_thread::get_id();
  std::atomic<int> ran{0};
  constexpr int kPosters = 4;
  constexpr int kTasksPerPoster = 100;
  std::vector<std::thread> posters;
  for (int t = 0; t < kPosters; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kTasksPerPoster; ++i) {
        loop.Post([&, loop_thread] {
          EXPECT_EQ(std::this_thread::get_id(), loop_thread);
          if (ran.fetch_add(1) + 1 == kPosters * kTasksPerPoster) {
            loop.Stop();
          }
        });
      }
    });
  }
  loop.Run();  // this thread is the loop thread
  for (auto& poster : posters) poster.join();
  EXPECT_EQ(ran.load(), kPosters * kTasksPerPoster);
}

TEST_P(EventLoopTest, StopFromAnotherThreadWakesABlockedLoop) {
  EventLoop loop(GetParam());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.Stop();
  });
  loop.Run();  // no fds, no tasks: blocks until the cross-thread Stop
  stopper.join();
  SUCCEED();
}

TEST_P(EventLoopTest, HangupIsReportedReadable) {
  // Peer closes its end: the loop must surface readability so the
  // owner's read() observes EOF (how connections learn about FIN).
  EventLoop loop(GetParam());
  Pipe pipe;
  bool saw_eof = false;
  ASSERT_TRUE(loop.Add(pipe.read_fd, true, false,
                       [&](const EventLoop::Event& event) {
                         ASSERT_TRUE(event.readable);
                         char buf[8];
                         if (::read(pipe.read_fd, buf, sizeof buf) == 0) {
                           saw_eof = true;
                           loop.Remove(pipe.read_fd);
                           loop.Stop();
                         }
                       })
                  .ok());
  ::close(pipe.write_fd);
  pipe.write_fd = -1;
  loop.Run();
  EXPECT_TRUE(saw_eof);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EventLoopTest,
#if defined(__linux__)
    ::testing::Values(EventLoop::Backend::kEpoll, EventLoop::Backend::kPoll),
#else
    ::testing::Values(EventLoop::Backend::kPoll),
#endif
    [](const ::testing::TestParamInfo<EventLoop::Backend>& info) {
      return info.param == EventLoop::Backend::kEpoll ? "Epoll" : "Poll";
    });

}  // namespace
}  // namespace logirec::serve::net
