// ModelServer::SwapWhenReady: the build (snapshot load, index
// construction) runs on the server's background swap thread and the new
// generation is published only when ready — in-flight traffic keeps
// being served by the old generation with zero failures throughout.
// Built into the TSan CI job.

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "serve/servable.h"
#include "serve/server.h"

namespace logirec::serve {
namespace {

class SwapWhenReadyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 120;
    config.seed = 11;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }

  std::unique_ptr<core::Recommender> TrainModel(int seed) {
    core::TrainConfig config;
    config.dim = 8;
    config.epochs = 4;
    config.seed = seed;
    auto model = baselines::MakeModel("HGCF", config);
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok());
    return std::move(*model);
  }

  data::Dataset dataset_;
  data::Split split_;
};

TEST_F(SwapWhenReadyTest, PublishesBuiltGenerationAndReportsIt) {
  ModelServer server((ServerOptions()));
  auto first = ServableModel::Create(TrainModel(1), dataset_.num_users,
                                     dataset_.num_items, &split_, 1);
  ASSERT_TRUE(first.ok());
  server.Swap(*first);

  std::promise<uint64_t> done;
  server.SwapWhenReady(
      [this] {
        return ServableModel::Create(TrainModel(2), dataset_.num_users,
                                     dataset_.num_items, &split_, 2);
      },
      [&done](const Result<std::shared_ptr<const ServableModel>>& built) {
        ASSERT_TRUE(built.ok()) << built.status().ToString();
        done.set_value((*built)->generation());
      });
  EXPECT_EQ(done.get_future().get(), 2u);
  EXPECT_EQ(server.Current()->generation(), 2u);
  server.Stop();
}

TEST_F(SwapWhenReadyTest, FailedBuildLeavesCurrentGenerationServing) {
  ModelServer server((ServerOptions()));
  auto first = ServableModel::Create(TrainModel(1), dataset_.num_users,
                                     dataset_.num_items, &split_, 1);
  ASSERT_TRUE(first.ok());
  server.Swap(*first);

  std::promise<Status> done;
  server.SwapWhenReady(
      [] {
        return Result<std::shared_ptr<const ServableModel>>(
            Status::IoError("synthetic build failure"));
      },
      [&done](const Result<std::shared_ptr<const ServableModel>>& built) {
        done.set_value(built.ok() ? Status::OK() : built.status());
      });
  const Status status = done.get_future().get();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(server.Current()->generation(), 1u);

  std::vector<int> items;
  EXPECT_TRUE(server.Rank(0, 10, &items).ok());
  server.Stop();
}

TEST_F(SwapWhenReadyTest, RejectsAfterStop) {
  ModelServer server((ServerOptions()));
  auto first = ServableModel::Create(TrainModel(1), dataset_.num_users,
                                     dataset_.num_items, &split_, 1);
  ASSERT_TRUE(first.ok());
  server.Swap(*first);
  server.Stop();

  std::promise<Status> done;
  server.SwapWhenReady(
      [this] {
        ADD_FAILURE() << "builder must not run after Stop()";
        return ServableModel::Create(TrainModel(2), dataset_.num_users,
                                     dataset_.num_items, &split_, 2);
      },
      [&done](const Result<std::shared_ptr<const ServableModel>>& built) {
        done.set_value(built.ok() ? Status::OK() : built.status());
      });
  EXPECT_EQ(done.get_future().get().code(),
            StatusCode::kFailedPrecondition);
}

// The satellite gate: a nontrivial index (HNSW over the surrogate space)
// is rebuilt and swapped in the background while clients hammer the
// server — zero in-flight failures, and traffic keeps flowing during
// the whole build.
TEST_F(SwapWhenReadyTest, BackgroundIndexRebuildNeverFailsInFlight) {
  retrieval::RetrievalOptions retrieval;
  retrieval.kind = retrieval::RetrievalKind::kHnsw;

  ModelServer server((ServerOptions()));
  auto first = ServableModel::Create(TrainModel(1), dataset_.num_users,
                                     dataset_.num_items, &split_, 1,
                                     retrieval);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->retrieval_enabled());
  server.Swap(*first);

  std::atomic<bool> stop{false};
  std::atomic<long> served{0};
  std::atomic<long> failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      int user = c;
      while (!stop.load()) {
        const RankResponse response =
            server.Submit(user++ % dataset_.num_users, 10).get();
        if (response.status.ok()) {
          served.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }

  // Cycle several background rebuilds; each trains a fresh model and
  // builds a fresh HNSW index off the serving threads.
  uint64_t generation = 1;
  for (int round = 0; round < 3; ++round) {
    const uint64_t next = ++generation;
    std::promise<Status> done;
    server.SwapWhenReady(
        [this, next, &retrieval] {
          return ServableModel::Create(
              TrainModel(static_cast<int>(next)), dataset_.num_users,
              dataset_.num_items, &split_, next, retrieval);
        },
        [&done](const Result<std::shared_ptr<const ServableModel>>& built) {
          done.set_value(built.ok() ? Status::OK() : built.status());
        });
    const Status status = done.get_future().get();
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(server.Current()->generation(), next);
    EXPECT_TRUE(server.Current()->retrieval_enabled());
  }

  // Let traffic run a little longer against the final generation, then
  // drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (served.load() < 200 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(server.Stats().requests_failed, 0);
}

TEST_F(SwapWhenReadyTest, QueuedSwapsPublishInOrder) {
  ModelServer server((ServerOptions()));
  auto first = ServableModel::Create(TrainModel(1), dataset_.num_users,
                                     dataset_.num_items, &split_, 1);
  ASSERT_TRUE(first.ok());
  server.Swap(*first);

  std::vector<std::future<uint64_t>> published;
  std::vector<std::promise<uint64_t>> promises(3);
  for (int i = 0; i < 3; ++i) {
    published.push_back(promises[i].get_future());
    const uint64_t next = 2 + i;
    server.SwapWhenReady(
        [this, next] {
          return ServableModel::Create(TrainModel(static_cast<int>(next)),
                                       dataset_.num_users,
                                       dataset_.num_items, &split_, next);
        },
        [&promises, i, &server](
            const Result<std::shared_ptr<const ServableModel>>& built) {
          ASSERT_TRUE(built.ok());
          // The task's generation is current the moment its callback
          // runs — queued tasks complete strictly in order.
          promises[i].set_value(server.Current()->generation());
        });
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(published[i].get(), static_cast<uint64_t>(2 + i));
  }
  server.Stop();
}

}  // namespace
}  // namespace logirec::serve
