// LineFramer: incremental newline framing under adversarial
// fragmentation — byte-at-a-time partial reads, many pipelined lines in
// one append, CRLF peers, oversized and unterminated lines.

#include "serve/net/framing.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace logirec::serve::net {
namespace {

std::vector<std::string> DrainAll(LineFramer* framer) {
  std::vector<std::string> lines;
  std::string line;
  while (framer->Next(&line)) lines.push_back(line);
  return lines;
}

TEST(LineFramerTest, SingleLine) {
  LineFramer framer;
  const std::string data = "3 10\n";
  framer.Append(data.data(), data.size());
  std::string line;
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_EQ(line, "3 10");
  EXPECT_FALSE(framer.Next(&line));
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(LineFramerTest, PartialReadsAcrossWakeups) {
  // The payload arrives one byte per append — the worst case for a
  // non-blocking read loop — and still frames exactly once per line.
  LineFramer framer;
  const std::string data = "17 5\n!stats\n42\n";
  std::vector<std::string> lines;
  std::string line;
  for (char c : data) {
    framer.Append(&c, 1);
    while (framer.Next(&line)) lines.push_back(line);
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"17 5", "!stats", "42"}));
}

TEST(LineFramerTest, PipelinedBurstInOneAppend) {
  LineFramer framer;
  std::string data;
  for (int i = 0; i < 100; ++i) data += std::to_string(i) + " 10\n";
  framer.Append(data.data(), data.size());
  const std::vector<std::string> lines = DrainAll(&framer);
  ASSERT_EQ(lines.size(), 100u);
  EXPECT_EQ(lines[0], "0 10");
  EXPECT_EQ(lines[99], "99 10");
}

TEST(LineFramerTest, StripsCarriageReturn) {
  LineFramer framer;
  const std::string data = "7 3\r\n!quit\r\n";
  framer.Append(data.data(), data.size());
  EXPECT_EQ(DrainAll(&framer),
            (std::vector<std::string>{"7 3", "!quit"}));
}

TEST(LineFramerTest, EmptyLinesSurvive) {
  LineFramer framer;
  const std::string data = "\n\n1\n";
  framer.Append(data.data(), data.size());
  EXPECT_EQ(DrainAll(&framer), (std::vector<std::string>{"", "", "1"}));
}

TEST(LineFramerTest, OversizedIncompleteLineTripsStickyError) {
  LineFramer framer(/*max_line_bytes=*/16);
  const std::string data(17, 'x');  // no terminator, beyond the bound
  framer.Append(data.data(), data.size());
  std::string line;
  EXPECT_FALSE(framer.Next(&line));
  EXPECT_EQ(framer.status().code(), StatusCode::kOutOfRange);
  // Sticky: later appends are ignored, nothing is ever framed again.
  const std::string more = "1 2\n";
  framer.Append(more.data(), more.size());
  EXPECT_FALSE(framer.Next(&line));
  EXPECT_EQ(framer.status().code(), StatusCode::kOutOfRange);
}

TEST(LineFramerTest, OversizedTerminatedLineAlsoErrors) {
  LineFramer framer(/*max_line_bytes=*/8);
  const std::string data = "123456789\n";  // 9 > 8, terminated
  framer.Append(data.data(), data.size());
  std::string line;
  EXPECT_FALSE(framer.Next(&line));
  EXPECT_EQ(framer.status().code(), StatusCode::kOutOfRange);
}

TEST(LineFramerTest, ExactlyMaxBytesIsFine) {
  LineFramer framer(/*max_line_bytes=*/4);
  const std::string data = "1234\n";
  framer.Append(data.data(), data.size());
  std::string line;
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_EQ(line, "1234");
  EXPECT_TRUE(framer.status().ok());
}

TEST(LineFramerTest, CompleteLinesBeforeTheOversizedOneStillDeliver) {
  LineFramer framer(/*max_line_bytes=*/8);
  const std::string data = "ok 1\n" + std::string(64, 'y');
  framer.Append(data.data(), data.size());
  std::string line;
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_EQ(line, "ok 1");
  EXPECT_FALSE(framer.Next(&line));
  EXPECT_EQ(framer.status().code(), StatusCode::kOutOfRange);
}

TEST(LineFramerTest, FlushRemainderActsLikeGetline) {
  // An unterminated final line (client sent "5 4" then FIN) is still
  // delivered once, at EOF.
  LineFramer framer;
  const std::string data = "1 2\n5 4";
  framer.Append(data.data(), data.size());
  std::string line;
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_EQ(line, "1 2");
  EXPECT_FALSE(framer.Next(&line));
  EXPECT_EQ(framer.buffered(), 3u);
  ASSERT_TRUE(framer.FlushRemainder(&line));
  EXPECT_EQ(line, "5 4");
  EXPECT_FALSE(framer.FlushRemainder(&line));
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(LineFramerTest, LongPipelinedStreamStaysCompact) {
  // Compaction must keep the consumed prefix from growing unboundedly
  // while preserving framing across compaction points.
  LineFramer framer;
  const std::string chunk = "12345 10\n";
  std::string line;
  for (int i = 0; i < 10000; ++i) {
    framer.Append(chunk.data(), chunk.size());
    ASSERT_TRUE(framer.Next(&line));
    EXPECT_EQ(line, "12345 10");
  }
  EXPECT_EQ(framer.buffered(), 0u);
}

}  // namespace
}  // namespace logirec::serve::net
