// Hot swap under load: concurrent swappers, batched submitters, and
// synchronous rankers hammer one ModelServer. Every response must be a
// complete, correct ranking from exactly one published generation — no
// torn state, no lost requests. Built into the TSan CI job.

#include <atomic>
#include <future>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "serve/servable.h"
#include "serve/server.h"

namespace logirec::serve {
namespace {

class HotSwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig config;
    config.num_users = 40;
    config.num_items = 60;
    config.seed = 5;
    dataset_ = data::GenerateSynthetic(config);
    split_ = data::TemporalSplit(dataset_);
  }

  std::shared_ptr<const ServableModel> TrainServable(uint64_t generation) {
    core::TrainConfig config;
    config.dim = 8;
    config.epochs = 4;
    config.seed = 100 + generation;
    auto model = baselines::MakeModel("BPRMF", config);
    EXPECT_TRUE((*model)->Fit(dataset_, split_).ok());
    auto servable =
        ServableModel::Create(std::move(*model), dataset_.num_users,
                              dataset_.num_items, &split_, generation);
    EXPECT_TRUE(servable.ok());
    return *servable;
  }

  /// The expected top-10 for (generation, user), computed up front.
  std::vector<int> Expected(const ServableModel& servable, int user) const {
    std::vector<double> scores(dataset_.num_items);
    servable.scorer().ScoreItemsInto(user, math::Span(scores),
                                     eval::ScoreMode::kExact);
    servable.MaskSeen(user, math::Span(scores));
    return eval::TopK(scores, 10);
  }

  data::Dataset dataset_;
  data::Split split_;
};

TEST_F(HotSwapTest, ConcurrentSwapsNeverTearServedRankings) {
  const std::vector<std::shared_ptr<const ServableModel>> generations = {
      TrainServable(1), TrainServable(2), TrainServable(3)};

  // Per-generation expected rankings, so any served response can be
  // checked against the generation it claims to come from.
  std::vector<std::vector<std::vector<int>>> expected(generations.size() +
                                                      1);
  for (size_t g = 0; g < generations.size(); ++g) {
    auto& per_user = expected[g + 1];
    per_user.resize(dataset_.num_users);
    for (int u = 0; u < dataset_.num_users; ++u) {
      per_user[u] = Expected(*generations[g], u);
    }
  }

  ServerOptions options;
  options.max_batch = 8;
  ModelServer server(options);
  server.Swap(generations[0]);

  std::atomic<bool> stop{false};
  std::atomic<long> served{0};

  // Swapper: cycles through the generations as fast as it can.
  std::thread swapper([&] {
    size_t next = 1;
    while (!stop.load()) {
      server.Swap(generations[next % generations.size()]);
      ++next;
      std::this_thread::yield();
    }
  });

  auto check = [&](int user, const RankResponse& response) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_GE(response.generation, 1u);
    ASSERT_LE(response.generation, generations.size());
    EXPECT_EQ(response.items, expected[response.generation][user])
        << "user " << user << " generation " << response.generation;
    served.fetch_add(1);
  };

  // Batched submitters.
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      int user = c;
      while (!stop.load()) {
        auto future = server.Submit(user % dataset_.num_users, 10);
        const RankResponse response = future.get();
        if (response.status.code() == StatusCode::kFailedPrecondition) {
          continue;  // raced shutdown
        }
        check(user % dataset_.num_users, response);
        ++user;
      }
    });
  }
  // Synchronous ranker: exercises the exact path concurrently.
  clients.emplace_back([&] {
    int user = 0;
    std::vector<int> items;
    while (!stop.load()) {
      const int u = user % dataset_.num_users;
      // Rank() does not report the generation, so re-derive it: the
      // ranking must match exactly one generation's expectation.
      const Status st = server.Rank(u, 10, &items);
      ASSERT_TRUE(st.ok());
      bool matched = false;
      for (size_t g = 1; g < expected.size(); ++g) {
        if (expected[g][u] == items) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "sync ranking for user " << u
                           << " matches no published generation";
      served.fetch_add(1);
      ++user;
    }
  });

  // Run until enough traffic has been validated (bounded by wall clock so
  // a TSan-slowed run still finishes).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (served.load() < 500 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  swapper.join();
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_GT(served.load(), 0);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_failed, 0);
  EXPECT_GE(stats.swaps, 1);
}

}  // namespace
}  // namespace logirec::serve
