// PipelineDriver end-to-end: the replay loop trains, snapshots, and
// hot-swaps generations under live background load with zero failed
// in-flight requests, and its metrics are a pure function of
// (dataset, seed, window schedule) at any thread count. Built into the
// TSan CI job.

#include "pipeline/pipeline.h"

#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace logirec::pipeline {
namespace {

class PipelineLiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_pipeline_live_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 30;
    config.num_items = 40;
    config.seed = 17;
    dataset_ = data::GenerateSynthetic(config);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  core::TrainConfig Config(int threads = 0) const {
    core::TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 4;
    config.num_threads = threads;
    return config;
  }

  PipelineOptions Options(const std::string& subdir) const {
    PipelineOptions options;
    options.num_windows = 4;
    options.bootstrap_windows = 2;
    options.eval_k = 10;
    options.snapshot_dir = dir_ + "/" + subdir;
    options.trainer.fine_tune_epochs = 2;
    std::filesystem::create_directories(options.snapshot_dir);
    return options;
  }

  std::string dir_;
  data::Dataset dataset_;
};

TEST_F(PipelineLiveTest, ReplayUnderLiveLoadNeverFailsInFlight) {
  PipelineOptions options = Options("warm");
  options.live_load_threads = 2;
  PipelineDriver driver(options, Config());
  auto report = driver.Run(dataset_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_EQ(report->windows.size(), 2u);  // windows 2 and 3
  EXPECT_GT(report->total_eval_users, 0);
  EXPECT_EQ(report->total_eval_failures, 0);
  EXPECT_GT(report->live_requests, 0);
  EXPECT_EQ(report->live_failures, 0);
  for (const WindowReport& w : report->windows) {
    EXPECT_TRUE(w.warm);
    EXPECT_TRUE(w.resumed_trainer_state);
    EXPECT_GT(w.eval_users, 0);
    EXPECT_GT(w.ingest.appended, 0);
  }
  // Generations advance: window t is served by the generation trained on
  // the windows before it.
  EXPECT_EQ(report->windows[0].generation, 1u);
  EXPECT_EQ(report->windows[1].generation, 2u);
}

TEST_F(PipelineLiveTest, FullRetrainModeRunsTheSameLoop) {
  PipelineOptions options = Options("full");
  options.full_retrain = true;
  PipelineDriver driver(options, Config());
  auto report = driver.Run(dataset_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->windows.size(), 2u);
  EXPECT_EQ(report->total_eval_failures, 0);
  for (const WindowReport& w : report->windows) {
    EXPECT_FALSE(w.warm);
  }
}

TEST_F(PipelineLiveTest, MetricsAreThreadCountInvariant) {
  auto run = [&](int threads, const std::string& subdir) {
    PipelineOptions options = Options(subdir);
    options.server.num_threads = threads == 0 ? 2 : threads;
    PipelineDriver driver(options, Config(threads));
    auto report = driver.Run(dataset_);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *report;
  };
  const PipelineReport one = run(1, "t1");
  const PipelineReport three = run(3, "t3");
  ASSERT_EQ(one.windows.size(), three.windows.size());
  for (size_t i = 0; i < one.windows.size(); ++i) {
    EXPECT_EQ(one.windows[i].ndcg, three.windows[i].ndcg)
        << "window " << one.windows[i].window;
    EXPECT_EQ(one.windows[i].recall, three.windows[i].recall)
        << "window " << one.windows[i].window;
    EXPECT_EQ(one.windows[i].eval_users, three.windows[i].eval_users);
  }
  EXPECT_EQ(one.mean_ndcg, three.mean_ndcg);
  EXPECT_EQ(one.mean_recall, three.mean_recall);
}

TEST_F(PipelineLiveTest, ServesThroughAnAnnIndexWithoutFailures) {
  PipelineOptions options = Options("hnsw");
  options.retrieval.kind = retrieval::RetrievalKind::kHnsw;
  options.live_load_threads = 1;
  PipelineDriver driver(options, Config());
  auto report = driver.Run(dataset_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_eval_failures, 0);
  EXPECT_EQ(report->live_failures, 0);
}

TEST_F(PipelineLiveTest, ValidatesOptions) {
  {
    PipelineOptions options = Options("bad1");
    options.num_windows = 1;
    auto report = PipelineDriver(options, Config()).Run(dataset_);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  }
  {
    PipelineOptions options = Options("bad2");
    options.bootstrap_windows = 4;  // == num_windows
    auto report = PipelineDriver(options, Config()).Run(dataset_);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  }
  {
    PipelineOptions options = Options("bad3");
    options.snapshot_dir.clear();
    auto report = PipelineDriver(options, Config()).Run(dataset_);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace logirec::pipeline
