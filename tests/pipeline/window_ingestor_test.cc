// WindowIngestor property tests: after any K ingested windows, every
// incrementally-maintained structure — user/item CSRs and propagator
// weights, negative-sampler positives, LogicEngine relation stores — is
// element-wise identical to one rebuilt from scratch over the
// accumulated state.

#include "pipeline/window_ingestor.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "pipeline/interaction_log.h"

namespace logirec::pipeline {
namespace {

data::Dataset MakeData(int seed = 9) {
  data::SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.seed = seed;
  return data::GenerateSynthetic(config);
}

IngestorOptions Options(bool hyperbolic) {
  IngestorOptions options;
  options.hyperbolic = hyperbolic;
  options.gcn_layers = 2;
  options.logic.use_membership = true;
  options.logic.use_hierarchy = true;
  options.logic.use_exclusion = true;
  options.logic.seed = 7;
  return options;
}

void ExpectSamePropagator(const graph::GcnPropagator& incremental,
                          const graph::GcnPropagator& rebuilt) {
  EXPECT_EQ(incremental.u_offsets(), rebuilt.u_offsets());
  EXPECT_EQ(incremental.u_cols(), rebuilt.u_cols());
  EXPECT_EQ(incremental.v_offsets(), rebuilt.v_offsets());
  EXPECT_EQ(incremental.v_cols(), rebuilt.v_cols());
  EXPECT_EQ(incremental.u_fwd_w(), rebuilt.u_fwd_w());
  EXPECT_EQ(incremental.u_adj_w(), rebuilt.u_adj_w());
  EXPECT_EQ(incremental.v_fwd_w(), rebuilt.v_fwd_w());
  EXPECT_EQ(incremental.v_adj_w(), rebuilt.v_adj_w());
}

void ExpectSameLogicStore(core::LogicEngine* incremental,
                          core::LogicEngine* rebuilt) {
  for (int family = 0; family < 4; ++family) {
    EXPECT_EQ(incremental->family_x(family), rebuilt->family_x(family))
        << "family " << family;
    EXPECT_EQ(incremental->family_y(family), rebuilt->family_y(family))
        << "family " << family;
    EXPECT_EQ(incremental->family_base(family),
              rebuilt->family_base(family))
        << "family " << family;
  }
  EXPECT_EQ(incremental->item_offsets(), rebuilt->item_offsets());
  EXPECT_EQ(incremental->item_rels(), rebuilt->item_rels());
  EXPECT_EQ(incremental->tag_offsets(), rebuilt->tag_offsets());
  EXPECT_EQ(incremental->tag_entries(), rebuilt->tag_entries());
}

class WindowIngestorTest : public ::testing::TestWithParam<bool> {};

TEST_P(WindowIngestorTest, IncrementalEqualsRebuildAfterEveryWindow) {
  const bool hyperbolic = GetParam();
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 5);
  const IngestorOptions options = Options(hyperbolic);
  WindowIngestor ingestor(log.MakeBaseDataset(), options);

  for (int w = 0; w < log.num_windows(); ++w) {
    auto stats = ingestor.Ingest(log.window(w));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(ingestor.windows_ingested(), w + 1);

    // --- CSR + propagator weights vs a from-scratch rebuild ------------
    const graph::BipartiteGraph rebuilt_graph(
        ds.num_users, ds.num_items, ingestor.split().train);
    const graph::GcnPropagator rebuilt_prop(
        &rebuilt_graph, options.gcn_layers,
        options.symmetric_norm ? graph::Norm::kSymmetric
                               : graph::Norm::kReceiver,
        options.num_threads);
    const graph::GcnPropagator* incremental_prop =
        hyperbolic ? ingestor.hgcn()->mutable_propagator()
                   : ingestor.propagator();
    ASSERT_NE(incremental_prop, nullptr);
    ExpectSamePropagator(*incremental_prop, rebuilt_prop);

    // --- negative sampler ----------------------------------------------
    const core::NegativeSampler rebuilt_sampler(ds.num_items,
                                                ingestor.split().train);
    for (int u = 0; u < ds.num_users; ++u) {
      EXPECT_EQ(ingestor.sampler()->positives(u),
                rebuilt_sampler.positives(u))
          << "user " << u << " after window " << w;
    }

    // --- logic engine relation stores ----------------------------------
    core::LogicEngine rebuilt_logic(ingestor.relations(), options.logic);
    ExpectSameLogicStore(ingestor.logic(), &rebuilt_logic);
  }

  // Everything ingested: the accumulated dataset matches the source
  // pair-for-pair.
  EXPECT_EQ(ingestor.dataset().interactions.size(),
            ds.interactions.size());
  EXPECT_EQ(ingestor.split().TrainSize(),
            static_cast<long>(ds.interactions.size()));
}

INSTANTIATE_TEST_SUITE_P(Geometries, WindowIngestorTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Hyperbolic" : "Euclidean";
                         });

TEST(WindowIngestorStatsTest, CountsDuplicatesWithoutMutatingState) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 3);
  WindowIngestor ingestor(log.MakeBaseDataset(), Options(true));
  auto first = ingestor.Ingest(log.window(0));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->duplicates, 0);
  const long train_before = ingestor.split().TrainSize();

  // Replaying the same window again is all duplicates, and a no-op.
  auto replay = ingestor.Ingest(log.window(0));
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->appended, 0);
  EXPECT_EQ(replay->duplicates, first->appended);
  EXPECT_EQ(replay->new_items, 0);
  EXPECT_EQ(replay->new_memberships, 0);
  EXPECT_EQ(ingestor.split().TrainSize(), train_before);

  // And the structures still match a rebuild (the duplicate probe must
  // not have touched them).
  const graph::BipartiteGraph rebuilt_graph(ds.num_users, ds.num_items,
                                            ingestor.split().train);
  const graph::GcnPropagator rebuilt_prop(&rebuilt_graph, 2,
                                          graph::Norm::kReceiver, 0);
  ExpectSamePropagator(*ingestor.hgcn()->mutable_propagator(),
                       rebuilt_prop);
}

TEST(WindowIngestorStatsTest, OutOfRangeIdsAbortTheIngest) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 2);
  WindowIngestor ingestor(log.MakeBaseDataset(), Options(true));
  const std::vector<data::Interaction> bad = {{ds.num_users + 3, 0, 1}};
  const auto stats = ingestor.Ingest(bad);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kOutOfRange);
}

TEST(WindowIngestorStatsTest, MembershipsFollowItemActivation) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 4);
  WindowIngestor ingestor(log.MakeBaseDataset(), Options(true));
  long total_memberships = 0;
  int total_new_items = 0;
  for (int w = 0; w < log.num_windows(); ++w) {
    auto stats = ingestor.Ingest(log.window(w));
    ASSERT_TRUE(stats.ok());
    total_memberships += stats->new_memberships;
    total_new_items += stats->new_items;
  }
  // Every item with at least one interaction activates exactly once, and
  // its full membership row enters the accumulated relation set.
  std::vector<char> touched(ds.num_items, 0);
  for (const data::Interaction& x : ds.interactions) touched[x.item] = 1;
  long expected_memberships = 0;
  int expected_items = 0;
  const data::LogicalRelations full = ds.ExtractRelations();
  std::vector<long> per_item(ds.num_items, 0);
  for (const auto& [item, tag] : full.memberships) ++per_item[item];
  for (int item = 0; item < ds.num_items; ++item) {
    if (touched[item]) {
      ++expected_items;
      expected_memberships += per_item[item];
    }
  }
  EXPECT_EQ(total_new_items, expected_items);
  EXPECT_EQ(total_memberships, expected_memberships);
  EXPECT_EQ(static_cast<long>(ingestor.relations().memberships.size()),
            expected_memberships);
}

}  // namespace
}  // namespace logirec::pipeline
