// WarmStartTrainer: full-fit and resume rounds produce resumable
// snapshots; resume restores the exact optimization point when the
// trailer is present, degrades gracefully on scoring-only snapshots,
// and is deterministic — same inputs, bit-identical output snapshot,
// at any thread count.

#include "pipeline/warm_start.h"

#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/model_zoo.h"
#include "data/synthetic.h"
#include "pipeline/interaction_log.h"
#include "pipeline/pipeline.h"
#include "pipeline/window_ingestor.h"

namespace logirec::pipeline {
namespace {

class WarmStartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/logirec_warm_start_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    data::SyntheticConfig config;
    config.num_users = 30;
    config.num_items = 40;
    config.seed = 21;
    dataset_ = data::GenerateSynthetic(config);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  core::TrainConfig Config() const {
    core::TrainConfig config;
    config.dim = 8;
    config.layers = 2;
    config.epochs = 4;
    return config;
  }

  std::vector<char> Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  std::string dir_;
  data::Dataset dataset_;
};

TEST_F(WarmStartTest, FullThenResumeCarriesTrainerState) {
  const InteractionLog log(dataset_, 3);
  WindowIngestor ingestor(log.MakeBaseDataset(),
                          MakeIngestorOptions("LogiRec++", Config()));
  ASSERT_TRUE(ingestor.Ingest(log.window(0)).ok());

  WarmStartOptions options;
  WarmStartTrainer trainer(options, Config());
  const std::string gen1 = dir_ + "/gen1.snap";
  auto full = trainer.FitFull(ingestor.dataset(), ingestor.split(), gen1);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->warm);
  EXPECT_GT(full->train_seconds, 0.0);
  ASSERT_TRUE(std::filesystem::exists(gen1));

  ASSERT_TRUE(ingestor.Ingest(log.window(1)).ok());
  core::TrainResources resources = ingestor.Resources();
  const std::string gen2 = dir_ + "/gen2.snap";
  auto warm = trainer.Resume(gen1, ingestor.dataset(), ingestor.split(),
                             &resources, gen2);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm);
  EXPECT_TRUE(warm->resumed_trainer_state);
  ASSERT_TRUE(std::filesystem::exists(gen2));

  // The emitted snapshot is itself resumable: chain a third round.
  ASSERT_TRUE(ingestor.Ingest(log.window(2)).ok());
  core::TrainResources next = ingestor.Resources();
  auto again = trainer.Resume(gen2, ingestor.dataset(), ingestor.split(),
                              &next, dir_ + "/gen3.snap");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->resumed_trainer_state);
}

TEST_F(WarmStartTest, ScoringOnlySnapshotDegradesGracefully) {
  const InteractionLog log(dataset_, 2);
  WindowIngestor ingestor(log.MakeBaseDataset(),
                          MakeIngestorOptions("LogiRec++", Config()));
  ASSERT_TRUE(ingestor.Ingest(log.window(0)).ok());

  // A scoring-only snapshot, as an external tool (or the serve CLI's
  // --save-model) would write it: no trainer-state trailer.
  const core::TrainConfig config = Config();
  auto model = baselines::MakeModel("LogiRec++", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Fit(ingestor.dataset(), ingestor.split()).ok());
  core::SnapshotHeader header;
  header.dim = config.dim;
  header.layers = config.layers;
  header.num_users = dataset_.num_users;
  header.num_items = dataset_.num_items;
  const std::string scoring_only = dir_ + "/scoring_only.snap";
  ASSERT_TRUE(
      core::ModelSnapshot::Write(**model, header, scoring_only).ok());

  ASSERT_TRUE(ingestor.Ingest(log.window(1)).ok());
  WarmStartTrainer trainer({}, config);
  core::TrainResources resources = ingestor.Resources();
  auto warm = trainer.Resume(scoring_only, ingestor.dataset(),
                             ingestor.split(), &resources,
                             dir_ + "/out.snap");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->warm);
  EXPECT_FALSE(warm->resumed_trainer_state);  // fell back, still trained
}

TEST_F(WarmStartTest, RejectsModelMismatch) {
  const InteractionLog log(dataset_, 2);
  WindowIngestor ingestor(log.MakeBaseDataset(),
                          MakeIngestorOptions("BPRMF", Config()));
  ASSERT_TRUE(ingestor.Ingest(log.window(0)).ok());

  WarmStartOptions bprmf_options;
  bprmf_options.model = "BPRMF";
  WarmStartTrainer bprmf(bprmf_options, Config());
  const std::string snap = dir_ + "/bprmf.snap";
  ASSERT_TRUE(
      bprmf.FitFull(ingestor.dataset(), ingestor.split(), snap).ok());

  WarmStartTrainer logirec({}, Config());  // trains LogiRec++
  const auto resumed = logirec.Resume(snap, ingestor.dataset(),
                                      ingestor.split(), nullptr,
                                      dir_ + "/out.snap");
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WarmStartTest, RejectsDimMismatch) {
  const InteractionLog log(dataset_, 2);
  WindowIngestor ingestor(log.MakeBaseDataset(),
                          MakeIngestorOptions("LogiRec++", Config()));
  ASSERT_TRUE(ingestor.Ingest(log.window(0)).ok());

  WarmStartTrainer trainer({}, Config());
  const std::string snap = dir_ + "/gen1.snap";
  ASSERT_TRUE(
      trainer.FitFull(ingestor.dataset(), ingestor.split(), snap).ok());

  core::TrainConfig wider = Config();
  wider.dim = 16;
  WarmStartTrainer mismatched({}, wider);
  const auto resumed = mismatched.Resume(snap, ingestor.dataset(),
                                         ingestor.split(), nullptr,
                                         dir_ + "/out.snap");
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WarmStartTest, ResumeIsDeterministicAtAnyThreadCount) {
  const InteractionLog log(dataset_, 2);

  auto run = [&](int threads) {
    core::TrainConfig config = Config();
    config.num_threads = threads;
    WindowIngestor ingestor(log.MakeBaseDataset(),
                            MakeIngestorOptions("LogiRec++", config));
    EXPECT_TRUE(ingestor.Ingest(log.window(0)).ok());
    WarmStartTrainer trainer({}, config);
    const std::string base =
        dir_ + "/t" + std::to_string(threads) + "_gen1.snap";
    EXPECT_TRUE(
        trainer.FitFull(ingestor.dataset(), ingestor.split(), base).ok());
    EXPECT_TRUE(ingestor.Ingest(log.window(1)).ok());
    core::TrainResources resources = ingestor.Resources();
    const std::string out =
        dir_ + "/t" + std::to_string(threads) + "_gen2.snap";
    auto warm = trainer.Resume(base, ingestor.dataset(), ingestor.split(),
                               &resources, out);
    EXPECT_TRUE(warm.ok()) << warm.status().ToString();
    return Slurp(out);
  };

  const std::vector<char> one = run(1);
  const std::vector<char> three = run(3);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, three)
      << "warm-start snapshot differs across thread counts";
}

TEST_F(WarmStartTest, BorrowedResourcesMatchOwnedRebuild) {
  // Resuming with borrowed ingestor structures and resuming with none
  // (ResumeFit rebuilds everything it needs) must produce bit-identical
  // snapshots — the borrowed path is an optimization, not a semantic.
  const InteractionLog log(dataset_, 2);
  WindowIngestor ingestor(log.MakeBaseDataset(),
                          MakeIngestorOptions("LogiRec++", Config()));
  ASSERT_TRUE(ingestor.Ingest(log.window(0)).ok());
  WarmStartTrainer trainer({}, Config());
  const std::string gen1 = dir_ + "/gen1.snap";
  ASSERT_TRUE(
      trainer.FitFull(ingestor.dataset(), ingestor.split(), gen1).ok());
  ASSERT_TRUE(ingestor.Ingest(log.window(1)).ok());

  core::TrainResources resources = ingestor.Resources();
  const std::string borrowed = dir_ + "/borrowed.snap";
  ASSERT_TRUE(trainer
                  .Resume(gen1, ingestor.dataset(), ingestor.split(),
                          &resources, borrowed)
                  .ok());
  const std::string owned = dir_ + "/owned.snap";
  ASSERT_TRUE(trainer
                  .Resume(gen1, ingestor.dataset(), ingestor.split(),
                          nullptr, owned)
                  .ok());
  EXPECT_EQ(Slurp(borrowed), Slurp(owned))
      << "borrowed-resource resume diverges from the owned rebuild";
}

}  // namespace
}  // namespace logirec::pipeline
