// InteractionLog: deterministic window slicing — an exact partition of
// the interaction log, per-user time order preserved, user-major replay
// order, and a catalog-only base dataset.

#include "pipeline/interaction_log.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace logirec::pipeline {
namespace {

data::Dataset MakeData(int seed = 3) {
  data::SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 40;
  config.seed = seed;
  return data::GenerateSynthetic(config);
}

using Triple = std::tuple<int, int, long>;

std::multiset<Triple> AsTriples(const std::vector<data::Interaction>& log) {
  std::multiset<Triple> out;
  for (const data::Interaction& x : log) {
    out.insert({x.user, x.item, x.timestamp});
  }
  return out;
}

TEST(InteractionLogTest, WindowsPartitionTheLogExactly) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 5);
  ASSERT_EQ(log.num_windows(), 5);
  EXPECT_EQ(log.total_interactions(),
            static_cast<long>(ds.interactions.size()));

  std::multiset<Triple> replayed;
  long count = 0;
  for (int w = 0; w < log.num_windows(); ++w) {
    count += static_cast<long>(log.window(w).size());
    for (const data::Interaction& x : log.window(w)) {
      replayed.insert({x.user, x.item, x.timestamp});
    }
  }
  EXPECT_EQ(count, log.total_interactions());
  EXPECT_EQ(replayed, AsTriples(ds.interactions));
}

TEST(InteractionLogTest, PerUserTimestampsAdvanceAcrossWindows) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 4);
  std::map<int, long> last_seen;
  for (int w = 0; w < log.num_windows(); ++w) {
    for (const data::Interaction& x : log.window(w)) {
      const auto it = last_seen.find(x.user);
      if (it != last_seen.end()) {
        EXPECT_LE(it->second, x.timestamp)
            << "user " << x.user << " went back in time in window " << w;
      }
      last_seen[x.user] = x.timestamp;
    }
  }
}

TEST(InteractionLogTest, WindowsAreUserMajor) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 4);
  for (int w = 0; w < log.num_windows(); ++w) {
    int last_user = -1;
    for (const data::Interaction& x : log.window(w)) {
      EXPECT_GE(x.user, last_user) << "window " << w;
      last_user = x.user;
    }
  }
}

TEST(InteractionLogTest, SlicingIsDeterministic) {
  const data::Dataset ds = MakeData();
  const InteractionLog a(ds, 6);
  const InteractionLog b(ds, 6);
  for (int w = 0; w < a.num_windows(); ++w) {
    ASSERT_EQ(a.window(w).size(), b.window(w).size()) << w;
    for (size_t i = 0; i < a.window(w).size(); ++i) {
      EXPECT_EQ(a.window(w)[i].user, b.window(w)[i].user);
      EXPECT_EQ(a.window(w)[i].item, b.window(w)[i].item);
      EXPECT_EQ(a.window(w)[i].timestamp, b.window(w)[i].timestamp);
    }
  }
}

TEST(InteractionLogTest, EveryUserAdvancesThroughEveryWindow) {
  // A user with n >= W interactions contributes to every window; the
  // positional slicing can't starve early or late windows.
  const data::Dataset ds = MakeData();
  const int W = 3;
  const InteractionLog log(ds, W);
  std::map<int, int> interactions_per_user;
  for (const data::Interaction& x : ds.interactions) {
    ++interactions_per_user[x.user];
  }
  for (int w = 0; w < W; ++w) {
    std::set<int> users_in_window;
    for (const data::Interaction& x : log.window(w)) {
      users_in_window.insert(x.user);
    }
    for (const auto& [user, n] : interactions_per_user) {
      if (n >= W) {
        EXPECT_TRUE(users_in_window.count(user))
            << "user " << user << " (n=" << n << ") missing from window "
            << w;
      }
    }
  }
}

TEST(InteractionLogTest, ClampsWindowCountToAtLeastOne) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 0);
  ASSERT_GE(log.num_windows(), 1);
  EXPECT_EQ(log.total_interactions(),
            static_cast<long>(ds.interactions.size()));
}

TEST(InteractionLogTest, BaseDatasetKeepsCatalogDropsInteractions) {
  const data::Dataset ds = MakeData();
  const InteractionLog log(ds, 4);
  const data::Dataset base = log.MakeBaseDataset();
  EXPECT_EQ(base.num_users, ds.num_users);
  EXPECT_EQ(base.num_items, ds.num_items);
  EXPECT_EQ(base.item_tags, ds.item_tags);
  EXPECT_EQ(base.taxonomy.num_tags(), ds.taxonomy.num_tags());
  EXPECT_TRUE(base.interactions.empty());
  EXPECT_TRUE(base.Validate().ok());
}

}  // namespace
}  // namespace logirec::pipeline
