#include "opt/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "hyper/lorentz.h"
#include "hyper/poincare.h"
#include "util/rng.h"

namespace logirec::opt {
namespace {

using math::Vec;

TEST(SgdTest, MinimizesQuadratic) {
  SgdOptimizer opt(0.1);
  Vec x{5.0, -3.0};
  for (int step = 0; step < 200; ++step) {
    const Vec g{2.0 * x[0], 2.0 * x[1]};  // grad of ||x||^2
    opt.Step(0, math::Span(x), g);
  }
  EXPECT_NEAR(x[0], 0.0, 1e-6);
  EXPECT_NEAR(x[1], 0.0, 1e-6);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  SgdOptimizer opt(0.1, /*l2=*/0.5);
  Vec x{1.0};
  const Vec zero_grad{0.0};
  opt.Step(0, math::Span(x), zero_grad);
  EXPECT_NEAR(x[0], 1.0 - 0.1 * 0.5, 1e-12);
}

TEST(SgdTest, ClipBoundsStepSize) {
  SgdOptimizer opt(1.0, 0.0, /*clip=*/1.0);
  Vec x{0.0};
  const Vec huge{1000.0};
  opt.Step(0, math::Span(x), huge);
  EXPECT_NEAR(x[0], -1.0, 1e-12);  // clipped to norm 1
}

TEST(AdamTest, MinimizesQuadraticFasterThanPlateau) {
  AdamOptimizer opt(0.1, /*rows=*/1, /*dim=*/2);
  Vec x{5.0, -3.0};
  for (int step = 0; step < 500; ++step) {
    const Vec g{2.0 * x[0], 2.0 * x[1]};
    opt.Step(0, math::Span(x), g);
  }
  EXPECT_NEAR(x[0], 0.0, 1e-3);
  EXPECT_NEAR(x[1], 0.0, 1e-3);
}

TEST(AdamTest, PerRowStateIsIndependent) {
  AdamOptimizer opt(0.1, /*rows=*/2, /*dim=*/1);
  Vec a{1.0}, b{1.0};
  // Row 0 gets many steps; row 1 one step. Their trajectories must match
  // for the first step (same bias correction at t=1).
  const Vec g{1.0};
  opt.Step(0, math::Span(a), g);
  const double after_one = a[0];
  for (int i = 0; i < 5; ++i) opt.Step(0, math::Span(a), g);
  opt.Step(1, math::Span(b), g);
  EXPECT_NEAR(b[0], after_one, 1e-12);
}

TEST(PoincareRsgdTest, StaysInBallAndConverges) {
  Rng rng(1);
  PoincareRsgd opt(0.05);
  Vec x{0.1, 0.1};
  const Vec target{0.5, -0.3};
  const double before = hyper::PoincareDistance(x, target);
  for (int step = 0; step < 300; ++step) {
    Vec g(2, 0.0);
    hyper::PoincareDistanceGrad(x, target, 1.0, math::Span(g), math::Span());
    opt.Step(0, math::Span(x), g);
    ASSERT_LT(math::Norm(x), 1.0);
  }
  // The distance objective is non-smooth at the optimum, so plain RSGD
  // orbits the target at a radius proportional to the step size.
  EXPECT_LT(hyper::PoincareDistance(x, target), 0.15 * before);
}

TEST(LorentzRsgdTest, StaysOnHyperboloidAndConverges) {
  LorentzRsgd opt(0.2);
  Vec x{1.0, 0.0, 0.0};
  hyper::ProjectToHyperboloid(math::Span(x));
  Vec target{0.0, 0.8, -0.4};
  hyper::ProjectToHyperboloid(math::Span(target));
  for (int step = 0; step < 100; ++step) {
    Vec g(3, 0.0);
    hyper::LorentzDistanceGrad(x, target, 1.0, math::Span(g), math::Span());
    opt.Step(0, math::Span(x), g);
    ASSERT_NEAR(hyper::LorentzDot(x, x), -1.0, 1e-8);
  }
  EXPECT_LT(hyper::LorentzDistance(x, target), 0.05);
}

TEST(OptimizerTest, LearningRateIsAdjustable) {
  SgdOptimizer opt(0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
  opt.set_learning_rate(0.01);
  Vec x{1.0};
  opt.Step(0, math::Span(x), Vec{1.0});
  EXPECT_NEAR(x[0], 1.0 - 0.01, 1e-12);
}

}  // namespace
}  // namespace logirec::opt
