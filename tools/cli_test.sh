#!/usr/bin/env bash
# End-to-end smoke test of the logirec CLI: generate -> stats -> train
# (with persistence) -> evaluate -> recommend. Invoked by ctest with the
# binary path as $1.
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --dataset=ciao --scale=0.4 --out="$WORK/data" | grep -q "wrote"
"$CLI" stats --data="$WORK/data" | grep -q "interactions"
"$CLI" train --data="$WORK/data" --epochs=20 --dim=8 \
  --model-out="$WORK/model" | grep -q "model saved"
"$CLI" evaluate --data="$WORK/data" --model-in="$WORK/model" \
  | grep -q "Recall@10"
"$CLI" recommend --data="$WORK/data" --model-in="$WORK/model" --user=1 \
  --topk=3 | grep -q "top-3 for user 1"

# Error paths must fail loudly.
if "$CLI" stats --data="$WORK/nope" 2>/dev/null; then
  echo "stats on a missing dir must fail" >&2
  exit 1
fi
if "$CLI" frobnicate 2>/dev/null; then
  echo "unknown command must fail" >&2
  exit 1
fi

echo "cli end-to-end OK"
