// logirec_pipeline — continuous-learning replay driver.
//
// Slices a dataset into time windows and closes the train->serve loop:
// bootstrap Fit, then per window evaluate LIVE through the model server,
// ingest, warm-start retrain (or full retrain), snapshot, and hot-swap
// the new generation while background load keeps hitting the server.
//
//   logirec_pipeline --windows=6 --bootstrap=2 --dataset=cd --scale=0.1
//   logirec_pipeline --data=DIR --mode=both --out=pipeline.json
//
// Flags:
//   --mode=warm|full|both  retraining mode per window; `both` runs the
//                          replay twice (identical windows/seed) and
//                          prints the warm-vs-full comparison
//   --live-threads=N       background load threads during retrain/swap
//   --out=PATH             write the report(s) as JSON
//
// Exits nonzero on any failed in-flight request (live load or
// evaluation) — the zero-failures serving contract is the gate.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/io.h"
#include "data/synthetic.h"
#include "pipeline/pipeline.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace logirec;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void AppendWindowJson(const pipeline::WindowReport& w, std::string* out) {
  out->append(StrFormat(
      "      {\"window\": %d, \"generation\": %llu, \"eval_users\": %ld, "
      "\"eval_failures\": %ld, \"ndcg\": %.6f, \"recall\": %.6f, "
      "\"appended\": %ld, \"duplicates\": %ld, \"new_items\": %d, "
      "\"new_memberships\": %ld, \"ingest_seconds\": %.4f, "
      "\"train_seconds\": %.4f, \"snapshot_seconds\": %.4f, "
      "\"swap_seconds\": %.4f, \"warm\": %s, "
      "\"resumed_trainer_state\": %s, \"train_size\": %ld}",
      w.window, static_cast<unsigned long long>(w.generation), w.eval_users,
      w.eval_failures, w.ndcg, w.recall, w.ingest.appended,
      w.ingest.duplicates, w.ingest.new_items, w.ingest.new_memberships,
      w.ingest_seconds, w.train_seconds, w.snapshot_seconds, w.swap_seconds,
      w.warm ? "true" : "false", w.resumed_trainer_state ? "true" : "false",
      w.train_size));
}

void AppendReportJson(const std::string& label,
                      const pipeline::PipelineReport& report,
                      std::string* out) {
  out->append(StrFormat("  \"%s\": {\n", label.c_str()));
  out->append(StrFormat("    \"bootstrap_train_seconds\": %.4f,\n",
                        report.bootstrap_train_seconds));
  out->append(StrFormat("    \"total_train_seconds\": %.4f,\n",
                        report.total_train_seconds));
  out->append(StrFormat("    \"mean_ndcg\": %.6f,\n", report.mean_ndcg));
  out->append(StrFormat("    \"mean_recall\": %.6f,\n", report.mean_recall));
  out->append(StrFormat("    \"total_eval_users\": %ld,\n",
                        report.total_eval_users));
  out->append(StrFormat("    \"total_eval_failures\": %ld,\n",
                        report.total_eval_failures));
  out->append(StrFormat("    \"live_requests\": %ld,\n",
                        report.live_requests));
  out->append(StrFormat("    \"live_failures\": %ld,\n",
                        report.live_failures));
  out->append(StrFormat("    \"live_shed\": %ld,\n", report.live_shed));
  out->append("    \"windows\": [\n");
  for (size_t i = 0; i < report.windows.size(); ++i) {
    AppendWindowJson(report.windows[i], out);
    out->append(i + 1 < report.windows.size() ? ",\n" : "\n");
  }
  out->append("    ]\n  }");
}

void PrintReport(const std::string& label,
                 const pipeline::PipelineReport& report) {
  std::printf("[%s] bootstrap %.2fs, windows %zu, "
              "train %.2fs total, NDCG@k %.4f, Recall@k %.4f, "
              "eval %ld users (%ld failed), live %ld ok / %ld failed / "
              "%ld shed\n",
              label.c_str(), report.bootstrap_train_seconds,
              report.windows.size(), report.total_train_seconds,
              report.mean_ndcg, report.mean_recall, report.total_eval_users,
              report.total_eval_failures, report.live_requests,
              report.live_failures, report.live_shed);
  for (const pipeline::WindowReport& w : report.windows) {
    std::printf("  window %d: gen %llu, %ld users, NDCG %.4f, "
                "+%ld pairs (%ld dup), ingest %.3fs, train %.3fs, "
                "swap %.3fs%s\n",
                w.window, static_cast<unsigned long long>(w.generation),
                w.eval_users, w.ndcg, w.ingest.appended,
                w.ingest.duplicates, w.ingest_seconds, w.train_seconds,
                w.swap_seconds,
                w.warm ? (w.resumed_trainer_state ? " [warm+state]"
                                                  : " [warm]")
                       : " [full]");
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("data", "", "dataset dir (from `logirec generate`)");
  flags.AddString("dataset", "cd", "synthetic preset when --data is empty");
  flags.AddDouble("scale", 0.1, "synthetic dataset scale");
  flags.AddInt("windows", 6, "replay windows");
  flags.AddInt("bootstrap", 2, "windows ingested before the bootstrap Fit");
  flags.AddString("mode", "warm", "retraining mode: warm, full, or both");
  flags.AddString("model", "LogiRec++", "model-zoo name");
  flags.AddInt("epochs", 30, "bootstrap/full-retrain epochs");
  flags.AddInt("fine-tune-epochs", 2, "epochs per warm fine-tune");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("layers", 3, "GCN layers");
  flags.AddDouble("lr", 0.05, "learning rate");
  flags.AddInt("seed", 7, "training seed");
  flags.AddInt("threads", 0, "training + serving threads (0 = hardware)");
  flags.AddInt("k", 20, "evaluation cutoff");
  flags.AddString("retrieval", "exact", "serving index: exact, ivf, hnsw");
  flags.AddInt("live-threads", 2,
               "background load threads during retrain/swap (0 = off)");
  flags.AddString("snapshot-dir", "",
                  "snapshot directory (default: a fresh temp dir)");
  flags.AddString("out", "", "write the JSON report here");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (flags.help_requested()) return 0;

  Result<data::Dataset> dataset = flags.GetString("data").empty()
      ? data::GenerateBenchmarkDataset(flags.GetString("dataset"),
                                       flags.GetDouble("scale"))
      : data::LoadDataset(flags.GetString("data"));
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("dataset: %d users, %d items, %zu interactions\n",
              dataset->num_users, dataset->num_items,
              dataset->interactions.size());

  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.layers = flags.GetInt("layers");
  config.epochs = flags.GetInt("epochs");
  config.learning_rate = flags.GetDouble("lr");
  config.seed = flags.GetInt("seed");
  config.num_threads = flags.GetInt("threads");

  pipeline::PipelineOptions options;
  options.num_windows = flags.GetInt("windows");
  options.bootstrap_windows = flags.GetInt("bootstrap");
  options.eval_k = flags.GetInt("k");
  options.live_load_threads = flags.GetInt("live-threads");
  options.trainer.model = flags.GetString("model");
  options.trainer.fine_tune_epochs = flags.GetInt("fine-tune-epochs");
  options.server.num_threads = flags.GetInt("threads");
  auto kind = retrieval::ParseRetrievalKind(flags.GetString("retrieval"));
  if (!kind.ok()) return Fail(kind.status());
  options.retrieval.kind = *kind;

  std::string snapshot_dir = flags.GetString("snapshot-dir");
  if (snapshot_dir.empty()) {
    snapshot_dir = (std::filesystem::temp_directory_path() /
                    StrFormat("logirec_pipeline_%d", flags.GetInt("seed")))
                       .string();
  }
  std::filesystem::create_directories(snapshot_dir);

  const std::string mode = flags.GetString("mode");
  if (mode != "warm" && mode != "full" && mode != "both") {
    return Fail(Status::InvalidArgument("--mode must be warm, full, or both"));
  }

  std::vector<std::pair<std::string, pipeline::PipelineReport>> runs;
  for (const std::string& label :
       mode == "both" ? std::vector<std::string>{"warm", "full"}
                      : std::vector<std::string>{mode}) {
    options.full_retrain = (label == "full");
    options.snapshot_dir = snapshot_dir + "/" + label;
    std::filesystem::create_directories(options.snapshot_dir);
    pipeline::PipelineDriver driver(options, config);
    auto report = driver.Run(*dataset);
    if (!report.ok()) return Fail(report.status());
    PrintReport(label, *report);
    runs.emplace_back(label, std::move(*report));
  }

  if (runs.size() == 2) {
    const pipeline::PipelineReport& warm = runs[0].second;
    const pipeline::PipelineReport& full = runs[1].second;
    const double ratio = warm.total_train_seconds > 0.0
        ? full.total_train_seconds / warm.total_train_seconds
        : 0.0;
    std::printf("warm-vs-full: NDCG %.4f vs %.4f (delta %+.4f), "
                "train %.2fs vs %.2fs (%.1fx cheaper)\n",
                warm.mean_ndcg, full.mean_ndcg,
                warm.mean_ndcg - full.mean_ndcg, warm.total_train_seconds,
                full.total_train_seconds, ratio);
  }

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    std::string json = "{\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      AppendReportJson(runs[i].first, runs[i].second, &json);
      json.append(i + 1 < runs.size() ? ",\n" : "\n");
    }
    json.append("}\n");
    std::ofstream file(out);
    file << json;
    if (!file.good()) return Fail(Status::IoError("cannot write " + out));
    std::printf("report written to %s\n", out.c_str());
  }

  for (const auto& [label, report] : runs) {
    if (report.total_eval_failures > 0 || report.live_failures > 0) {
      std::fprintf(stderr,
                   "FAILED: %s run had %ld eval / %ld live failures\n",
                   label.c_str(), report.total_eval_failures,
                   report.live_failures);
      return 1;
    }
  }
  return 0;
}
