#!/usr/bin/env bash
# End-to-end smoke test of the serving path: train a snapshot with the
# CLI, serve it over stdio (rank / !stats / !swap / !quit), evaluate the
# snapshot, and exercise the TCP mode when the loopback is available.
# Invoked by ctest: $1 = logirec CLI binary, $2 = logirec_serve binary.
set -euo pipefail

CLI="$1"
SERVE="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --dataset=ciao --scale=0.4 --out="$WORK/data" >/dev/null
"$CLI" train --data="$WORK/data" --model=HGCF --epochs=10 --dim=8 \
  --save-model="$WORK/hgcf.snap" | grep -q "snapshot saved"
"$CLI" train --data="$WORK/data" --model=BPRMF --epochs=10 --dim=8 \
  --save-model="$WORK/bprmf.snap" | grep -q "snapshot saved"

# Snapshots restore through evaluate/recommend for any zoo model.
"$CLI" evaluate --data="$WORK/data" --load-model="$WORK/hgcf.snap" \
  | grep -q "Recall@10"
"$CLI" recommend --data="$WORK/data" --load-model="$WORK/bprmf.snap" \
  --user=1 --topk=3 | grep -q "top-3 for user 1"

# stdio serving session: rank, hot-swap to the other snapshot, rank again
# (generation must bump), stats, quit.
OUT="$WORK/session.out"
"$SERVE" --snapshot="$WORK/hgcf.snap" --data="$WORK/data" >"$OUT" <<EOF
3 5
!swap $WORK/bprmf.snap
3 5
!stats
!quit
EOF
grep -q "ok user=3 gen=1 items=" "$OUT"
grep -q "ok swapped gen=2 model=BPRMF" "$OUT"
grep -q "ok user=3 gen=2 items=" "$OUT"
grep -q "stats requests=" "$OUT"
grep -q "bye" "$OUT"

# Async reload: the snapshot load and index build run on the server's
# swap thread, replies still arrive in request order, and a corrupt
# snapshot answers with an error while the connection and the serving
# generation stay intact (the next rank keeps working).
head -c 64 "$WORK/hgcf.snap" >"$WORK/corrupt.snap"
ROUT="$WORK/reload.out"
"$SERVE" --snapshot="$WORK/hgcf.snap" --data="$WORK/data" >"$ROUT" <<EOF
3 5
!reload $WORK/bprmf.snap
3 5
!reload $WORK/corrupt.snap
3 5
!stats
!quit
EOF
grep -q "ok user=3 gen=1 items=" "$ROUT"
grep -q "ok reloaded gen=2 model=BPRMF" "$ROUT"
test "$(grep -c "ok user=3 gen=2 items=" "$ROUT")" -eq 2
grep -q "error" "$ROUT"
grep -q "bye" "$ROUT"
printf '!reload\n!quit\n' | "$SERVE" --snapshot="$WORK/bprmf.snap" \
  >"$WORK/reload_err.out"
grep -q "error InvalidArgument" "$WORK/reload_err.out"

# Malformed input and a corrupted snapshot produce errors, not crashes.
printf 'not_a_user\n!swap /nonexistent.snap\n!quit\n' \
  | "$SERVE" --snapshot="$WORK/bprmf.snap" >"$WORK/err.out"
grep -q "error InvalidArgument" "$WORK/err.out"
grep -q "error IoError" "$WORK/err.out"
if "$SERVE" --snapshot="$WORK/data/interactions.csv" 2>/dev/null; then
  echo "serving a non-snapshot file must fail" >&2
  exit 1
fi

# TCP mode (skipped gracefully if the loopback cannot be bound).
PORT=$(( (RANDOM % 20000) + 20000 ))
if "$SERVE" --snapshot="$WORK/bprmf.snap" --data="$WORK/data" \
     --port="$PORT" --max-sessions=1 2>"$WORK/tcp.log" &
then
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    grep -q "listening" "$WORK/tcp.log" 2>/dev/null && break
    sleep 0.1
  done
  if grep -q "listening" "$WORK/tcp.log"; then
    # Pipelined burst in one write: replies must come back one per
    # request line, in order, through the concurrent server.
    RESPONSE="$(printf '5 4\n6 4\n!stats\n!quit\n' \
      | timeout 10 bash -c "exec 3<>/dev/tcp/127.0.0.1/$PORT; cat >&3; cat <&3" \
      || true)"
    echo "$RESPONSE" | grep -q "ok user=5 gen=1 items=" \
      || { echo "TCP session failed: $RESPONSE" >&2; exit 1; }
    echo "$RESPONSE" | grep -q "ok user=6 gen=1 items=" \
      || { echo "TCP pipelined reply missing: $RESPONSE" >&2; exit 1; }
    echo "$RESPONSE" | grep -q "stats requests=" \
      || { echo "TCP stats reply missing: $RESPONSE" >&2; exit 1; }
    wait "$SERVER_PID"
  else
    echo "note: TCP bind unavailable, skipping TCP check" >&2
    kill "$SERVER_PID" 2>/dev/null || true
  fi
fi

echo "serve end-to-end OK"
