// logirec_serve — online recommendation server over a binary model
// snapshot, speaking the newline protocol (serve/protocol.h):
//
//   <user_id> [k]   ->  ok user=U gen=G items=id,id,...
//   !swap PATH      ->  hot-swap the model from another snapshot
//   !stats          ->  server counters and latency percentiles
//   !quit           ->  end the session
//   (overload)      ->  "!busy" instead of unbounded queueing
//
// This binary is a thin shell: the protocol session (ordered replies,
// busy shedding) is serve::ProtocolSession, the concurrent TCP front is
// serve::net::NetServer (epoll event loop with a poll fallback,
// per-connection framing state machines), and request execution is the
// bounded-queue worker pool inside serve::ModelServer.
//
// Modes:
//   stdio (default)      one request per stdin line, one response line
//   --port=N             concurrent TCP on 127.0.0.1:N (0 picks a free
//                        port, printed on stderr), same protocol per
//                        connection; --max-sessions bounds the process
//                        for tests: the listener closes after that many
//                        accepts and the process exits once they drain
//
//   --snapshot=PATH      initial model (required)
//   --data=DIR           dataset dir; enables seen-item exclusion via the
//                        temporal split (same mask as the evaluator)
//   --batch=N            micro-batch cap of the request batcher
//   --threads=N          scoring workers (0 = hardware concurrency)
//   --topk=N             default k when a request omits it
//   --max-queue=N        admission-queue bound; beyond it ranks get !busy
//   --poller=auto|epoll|poll   event-loop backend for the TCP mode
//   --retrieval=exact|ivf|hnsw   candidate generation: exact full scan
//                        (default) or a sublinear ANN index over the
//                        model's ranking-surrogate space, built at
//                        snapshot load (and on every !swap) and carried
//                        inside the immutable generation
//   --nprobe=N           IVF cells scanned per query
//   --ef-search=N        HNSW beam width per query
//   --precision=f64|f32|int8   serving-side scoring precision: f64 is the
//                        bit-identical default; f32/int8 serve from a
//                        compact catalog (and compact index state) with
//                        tolerance-gated ranking quality
//   --save-model=PATH    conversion mode: re-encode --snapshot at
//                        --save-precision (default: --precision) and exit
//                        without serving
//   --save-precision=DTYPE   storage dtype for --save-model

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "data/io.h"
#include "retrieval/retriever.h"
#include "serve/net/net_server.h"
#include "serve/protocol.h"
#include "serve/servable.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace logirec;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// The stdio REPL: one session, each line answered before the next is
/// read. Rank replies complete on worker threads; the flush hook wakes
/// this thread to print them in order.
int RunStdio(const std::shared_ptr<serve::ProtocolSession>& session) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  session->SetFlushHook([&] {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
    cv.notify_one();
  });
  std::string line;
  bool quit = false;
  while (!quit && std::getline(std::cin, line)) {
    session->HandleLine(line);
    for (;;) {
      std::vector<std::string> replies;
      bool close_after = false;
      session->DrainReady(&replies, &close_after);
      for (const std::string& reply : replies) {
        std::printf("%s\n", reply.c_str());
      }
      std::fflush(stdout);
      if (close_after) {
        quit = true;
        break;
      }
      if (!session->HasPending()) break;
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::milliseconds(50),
                  [&] { return ready; });
      ready = false;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("snapshot", "", "binary model snapshot to serve");
  flags.AddString("data", "",
                  "dataset dir for seen-item exclusion (optional)");
  flags.AddInt("port", -1,
               "TCP port on 127.0.0.1 (-1 = stdio mode, 0 = pick a free "
               "port)");
  flags.AddInt("batch", 32, "request micro-batch cap");
  flags.AddInt("threads", 0, "scoring workers (0 = hardware)");
  flags.AddInt("topk", 10, "default k when a request omits it");
  flags.AddInt("max-queue", 1024,
               "admission-queue bound; rank requests beyond it are shed "
               "with !busy");
  flags.AddInt("max-sessions", 0,
               "TCP: close the listener after this many accepted "
               "connections and exit once they drain (0 = serve forever)");
  flags.AddString("poller", "auto",
                  "TCP event-loop backend: auto, epoll, or poll");
  flags.AddString("retrieval", "exact",
                  "candidate generation: exact, ivf, or hnsw");
  flags.AddInt("nprobe", 16, "IVF cells scanned per query");
  flags.AddInt("ef-search", 96, "HNSW beam width per query");
  flags.AddString("precision", "f64",
                  "serving-side scoring precision: f64, f32, or int8");
  flags.AddString("save-model", "",
                  "re-encode --snapshot at --save-precision and exit");
  flags.AddString("save-precision", "",
                  "storage dtype for --save-model (default: --precision)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) return Fail(st);
  if (flags.help_requested()) return 0;
  if (flags.GetString("snapshot").empty()) {
    return Fail(Status::InvalidArgument("--snapshot is required"));
  }
  serve::net::EventLoop::Backend backend;
  if (flags.GetString("poller") == "auto") {
    backend = serve::net::EventLoop::Backend::kAuto;
  } else if (flags.GetString("poller") == "epoll") {
    backend = serve::net::EventLoop::Backend::kEpoll;
  } else if (flags.GetString("poller") == "poll") {
    backend = serve::net::EventLoop::Backend::kPoll;
  } else {
    return Fail(Status::InvalidArgument("unknown --poller: " +
                                        flags.GetString("poller")));
  }

  // The split must outlive the server: ServableModel keeps only the CSR
  // it builds, but swaps construct new servables from it.
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<data::Split> split;
  if (!flags.GetString("data").empty()) {
    auto loaded = data::LoadDataset(flags.GetString("data"));
    if (!loaded.ok()) return Fail(loaded.status());
    dataset = std::make_unique<data::Dataset>(std::move(*loaded));
    split = std::make_unique<data::Split>(data::TemporalSplit(*dataset));
  }

  eval::ScorePrecision precision;
  if (!eval::ParseScorePrecision(flags.GetString("precision"), &precision)) {
    return Fail(Status::InvalidArgument("unknown --precision: " +
                                        flags.GetString("precision")));
  }

  // Conversion mode: restore the snapshot, re-encode it at the requested
  // storage dtype, and exit — the bridge from f64 training snapshots to
  // compact serving artifacts.
  const std::string save_model = flags.GetString("save-model");
  if (!save_model.empty()) {
    const std::string dtype_name = flags.GetString("save-precision").empty()
                                       ? flags.GetString("precision")
                                       : flags.GetString("save-precision");
    auto dtype = core::ParseSnapshotDtype(dtype_name);
    if (!dtype.ok()) return Fail(dtype.status());
    core::SnapshotHeader header;
    auto model = core::ModelSnapshot::Read(flags.GetString("snapshot"),
                                           baselines::MakeModel, &header);
    if (!model.ok()) return Fail(model.status());
    const Status written =
        core::ModelSnapshot::Write(**model, header, save_model, *dtype);
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr, "snapshot re-encoded as %s to %s\n",
                 core::SnapshotDtypeName(*dtype).c_str(),
                 save_model.c_str());
    return 0;
  }

  auto retrieval_kind =
      retrieval::ParseRetrievalKind(flags.GetString("retrieval"));
  if (!retrieval_kind.ok()) return Fail(retrieval_kind.status());
  retrieval::RetrievalOptions retrieval_options;
  retrieval_options.kind = *retrieval_kind;
  retrieval_options.precision = precision;
  retrieval_options.ivf.nprobe = flags.GetInt("nprobe");
  retrieval_options.hnsw.ef_search = flags.GetInt("ef-search");

  serve::ServerOptions options;
  options.max_batch = flags.GetInt("batch");
  options.num_threads = flags.GetInt("threads");
  options.default_k = flags.GetInt("topk");
  options.max_queue = flags.GetInt("max-queue");
  serve::ModelServer server(options);

  std::atomic<uint64_t> generation{1};
  auto context = std::make_shared<serve::ProtocolSession::Context>();
  context->server = &server;
  context->split = split.get();
  context->generation = &generation;
  context->factory = baselines::MakeModel;
  context->retrieval = retrieval_options;

  auto servable = serve::ServableModel::FromSnapshot(
      flags.GetString("snapshot"), baselines::MakeModel, context->split,
      generation.load(), retrieval_options);
  if (!servable.ok()) return Fail(servable.status());
  server.Swap(*servable);
  std::fprintf(stderr,
               "serving %s (%d users, %d items, retrieval=%s, "
               "precision=%s, snapshot_dtype=%s)\n",
               (*servable)->model_name().c_str(), (*servable)->num_users(),
               (*servable)->num_items(),
               retrieval::RetrievalKindName((*servable)->retrieval_kind())
                   .c_str(),
               eval::ScorePrecisionName((*servable)->precision()),
               core::SnapshotDtypeName((*servable)->snapshot_dtype())
                   .c_str());

  const int port = flags.GetInt("port");
  if (port < 0) {
    const int rc =
        RunStdio(std::make_shared<serve::ProtocolSession>(context));
    server.Stop();  // drain before the session machinery goes away
    return rc;
  }

  serve::net::NetServerOptions net_options;
  net_options.port = port;
  net_options.max_sessions = flags.GetInt("max-sessions");
  net_options.backend = backend;
  serve::net::NetServer net(net_options, [context] {
    return std::make_shared<serve::ProtocolSession>(context);
  });
  const Status started = net.Start();
  if (!started.ok()) return Fail(started);
  std::fprintf(stderr, "listening on 127.0.0.1:%d\n", net.port());
  net.Run();
  // Drain the worker pool before NetServer (and its event loop) is
  // destroyed: completions post through the loop (NetServer lifetime
  // contract).
  server.Stop();
  return 0;
}
