// logirec_serve — online recommendation server over a binary model
// snapshot, speaking the newline protocol (serve/protocol.h):
//
//   <user_id> [k]   ->  ok user=U gen=G items=id,id,...
//   !swap PATH      ->  hot-swap the model from another snapshot
//   !stats          ->  server counters and latency percentiles
//   !quit           ->  end the session
//
// Modes:
//   stdio (default)      one request per stdin line, one response line
//   --port=N             TCP on 127.0.0.1:N, same protocol per connection
//                        (sessions are served sequentially;
//                        --max-sessions bounds the process for tests)
//
//   --snapshot=PATH      initial model (required)
//   --data=DIR           dataset dir; enables seen-item exclusion via the
//                        temporal split (same mask as the evaluator)
//   --batch=N            micro-batch cap of the request batcher
//   --threads=N          scoring workers (0 = hardware concurrency)
//   --topk=N             default k when a request omits it

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "baselines/model_zoo.h"
#include "data/io.h"
#include "serve/protocol.h"
#include "serve/servable.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace logirec;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Session state shared by the stdio and TCP front ends.
struct Serving {
  serve::ModelServer* server = nullptr;
  const data::Split* split = nullptr;  // null = no exclusion masking
  uint64_t next_generation = 1;
};

/// Handles one protocol line. Returns false when the session should end.
/// Writes nothing for skippable lines (blanks, comments).
bool HandleLine(const std::string& line, Serving* serving,
                std::string* response) {
  response->clear();
  auto request = serve::ParseRequestLine(line);
  if (!request.ok()) {
    if (request.status().code() == StatusCode::kNotFound) return true;
    *response = serve::FormatError(request.status());
    return true;
  }
  switch (request->kind) {
    case serve::Request::Kind::kQuit:
      *response = "bye";
      return false;
    case serve::Request::Kind::kStats:
      *response = serve::FormatStats(serving->server->Stats());
      return true;
    case serve::Request::Kind::kSwap: {
      auto servable = serve::ServableModel::FromSnapshot(
          request->path, baselines::MakeModel, serving->split,
          ++serving->next_generation);
      if (!servable.ok()) {
        *response = serve::FormatError(servable.status());
        return true;
      }
      const uint64_t generation = serving->server->Swap(*servable);
      *response = StrFormat(
          "ok swapped gen=%llu model=%s",
          static_cast<unsigned long long>(generation),
          serving->server->Current()->model_name().c_str());
      return true;
    }
    case serve::Request::Kind::kRank: {
      serve::RankResponse ranked =
          serving->server->Submit(request->user, request->k).get();
      *response = ranked.status.ok()
                      ? serve::FormatRanking(request->user,
                                             ranked.generation,
                                             ranked.items)
                      : serve::FormatError(ranked.status);
      return true;
    }
  }
  return true;
}

int RunStdio(Serving* serving) {
  std::string line, response;
  while (std::getline(std::cin, line)) {
    const bool keep_going = HandleLine(line, serving, &response);
    if (!response.empty()) std::printf("%s\n", response.c_str());
    std::fflush(stdout);
    if (!keep_going) break;
  }
  return 0;
}

/// Minimal sequential TCP front end on 127.0.0.1: accept, serve the
/// session line-by-line, repeat. Plenty for a bench driver or smoke test;
/// concurrency lives in the request batcher, not the socket layer.
int RunTcp(Serving* serving, int port, int max_sessions) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Fail(Status::IoError("socket() failed"));
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listener, 8) < 0) {
    ::close(listener);
    return Fail(Status::IoError(
        StrFormat("cannot listen on 127.0.0.1:%d", port)));
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%d\n", port);

  int sessions = 0;
  while (max_sessions <= 0 || sessions < max_sessions) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) break;
    ++sessions;
    std::string pending, response;
    char buf[4096];
    bool keep_going = true;
    while (keep_going) {
      const ssize_t n = ::read(conn, buf, sizeof buf);
      if (n <= 0) break;
      pending.append(buf, static_cast<size_t>(n));
      size_t eol;
      while (keep_going && (eol = pending.find('\n')) != std::string::npos) {
        const std::string line = pending.substr(0, eol);
        pending.erase(0, eol + 1);
        keep_going = HandleLine(line, serving, &response);
        if (!response.empty()) {
          response.push_back('\n');
          size_t sent = 0;
          while (sent < response.size()) {
            const ssize_t w = ::write(conn, response.data() + sent,
                                      response.size() - sent);
            if (w <= 0) {
              keep_going = false;
              break;
            }
            sent += static_cast<size_t>(w);
          }
        }
      }
    }
    ::close(conn);
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("snapshot", "", "binary model snapshot to serve");
  flags.AddString("data", "",
                  "dataset dir for seen-item exclusion (optional)");
  flags.AddInt("port", 0, "TCP port on 127.0.0.1 (0 = stdio mode)");
  flags.AddInt("batch", 32, "request micro-batch cap");
  flags.AddInt("threads", 0, "scoring workers (0 = hardware)");
  flags.AddInt("topk", 10, "default k when a request omits it");
  flags.AddInt("max-sessions", 0,
               "TCP: exit after this many sessions (0 = serve forever)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) return Fail(st);
  if (flags.help_requested()) return 0;
  if (flags.GetString("snapshot").empty()) {
    return Fail(Status::InvalidArgument("--snapshot is required"));
  }

  // The split must outlive the server: ServableModel keeps only the CSR
  // it builds, but swaps construct new servables from it.
  std::unique_ptr<data::Dataset> dataset;
  std::unique_ptr<data::Split> split;
  if (!flags.GetString("data").empty()) {
    auto loaded = data::LoadDataset(flags.GetString("data"));
    if (!loaded.ok()) return Fail(loaded.status());
    dataset = std::make_unique<data::Dataset>(std::move(*loaded));
    split = std::make_unique<data::Split>(data::TemporalSplit(*dataset));
  }

  serve::ServerOptions options;
  options.max_batch = flags.GetInt("batch");
  options.num_threads = flags.GetInt("threads");
  options.default_k = flags.GetInt("topk");
  serve::ModelServer server(options);

  Serving serving;
  serving.server = &server;
  serving.split = split.get();
  auto servable = serve::ServableModel::FromSnapshot(
      flags.GetString("snapshot"), baselines::MakeModel, serving.split,
      serving.next_generation);
  if (!servable.ok()) return Fail(servable.status());
  server.Swap(*servable);
  std::fprintf(stderr, "serving %s (%d users, %d items)\n",
               (*servable)->model_name().c_str(), (*servable)->num_users(),
               (*servable)->num_items());

  const int port = flags.GetInt("port");
  return port > 0
             ? RunTcp(&serving, port, flags.GetInt("max-sessions"))
             : RunStdio(&serving);
}
