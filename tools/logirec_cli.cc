// logirec — command-line interface over the library.
//
//   logirec generate  --dataset=cd --out=DIR [--scale=]        synthesize a benchmark dataset
//   logirec stats     --data=DIR                               Table-I style statistics
//   logirec train     --data=DIR --model-out=DIR [--model=]    fit LogiRec++ (or any zoo model*)
//   logirec evaluate  --data=DIR --model-in=DIR                Recall/NDCG of a saved model
//   logirec recommend --data=DIR --model-in=DIR --user=N       top-K for one user
//
// Training flags (all models route through core::Trainer):
//   --threads=N      ParallelFor workers (0 = hardware concurrency)
//   --parallel=MODE  det (default; thread-count-invariant sharded SGD) or
//                    seq (bit-identical single-stream legacy order)
//   --patience=N     early stopping: stop after N validation probes without
//                    improvement, restore the best parameters (0 = off)
//   --eval-every=N   epochs between validation probes when patience > 0
//   --log-epochs     print per-epoch loss/validation telemetry, including
//                    the ranking / logic / mining wall-time breakdown
//
// LogiRec/LogiRec++ logic-pass flags:
//   --logic-batch=N       relations sampled per logic family per step
//                         (0 = every relation; sampled slices are unbiased
//                         and thread-count invariant)
//   --logic-parallel=MODE det (batched slot-fill kernels) or seq (legacy
//                         per-relation scalar loop); empty follows
//                         --parallel
//
// Persistence:
//   --save-model=PATH  (train) write a binary model snapshot; works for
//                      every zoo model (core::ModelSnapshot)
//   --load-model=PATH  (evaluate/recommend) restore a binary snapshot
//   --model-out/--model-in keep the legacy LogiRec-only CSV directory
//   format as a debug/export path.

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "baselines/model_zoo.h"
#include "core/logirec_model.h"
#include "core/snapshot.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace logirec;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(const FlagParser& flags) {
  auto dataset = data::GenerateBenchmarkDataset(flags.GetString("dataset"),
                                                flags.GetDouble("scale"));
  if (!dataset.ok()) return Fail(dataset.status());
  const std::string out = flags.GetString("out");
  std::filesystem::create_directories(out);
  const Status st = data::SaveDataset(*dataset, out);
  if (!st.ok()) return Fail(st);
  const auto stats = data::ComputeStats(*dataset);
  std::printf("wrote %s: %d users, %d items, %ld interactions, %d tags\n",
              out.c_str(), stats.num_users, stats.num_items,
              stats.num_interactions, stats.num_tags);
  return 0;
}

Result<data::Dataset> LoadData(const FlagParser& flags) {
  const std::string dir = flags.GetString("data");
  if (dir.empty()) return Status::InvalidArgument("--data is required");
  return data::LoadDataset(dir);
}

int CmdStats(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const auto s = data::ComputeStats(*dataset);
  std::printf("users         %d\n", s.num_users);
  std::printf("items         %d\n", s.num_items);
  std::printf("interactions  %ld\n", s.num_interactions);
  std::printf("density       %.4f%%\n", s.density_percent);
  std::printf("tags          %d\n", s.num_tags);
  std::printf("memberships   %ld\n", s.num_memberships);
  std::printf("hierarchy     %ld\n", s.num_hierarchy);
  std::printf("exclusions    %ld\n", s.num_exclusions);
  return 0;
}

core::TrainConfig ConfigFromFlags(const FlagParser& flags) {
  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.layers = flags.GetInt("layers");
  config.epochs = flags.GetInt("epochs");
  config.learning_rate = flags.GetDouble("lr");
  config.lambda = flags.GetDouble("lambda");
  config.margin = flags.GetDouble("margin");
  config.num_threads = flags.GetInt("threads");
  config.parallel_mode = flags.GetString("parallel") == "seq"
                             ? core::ParallelMode::kSequential
                             : core::ParallelMode::kDeterministic;
  config.early_stopping_patience = flags.GetInt("patience");
  config.eval_every = flags.GetInt("eval-every");
  config.logic_batch = flags.GetInt("logic-batch");
  const std::string logic_parallel = flags.GetString("logic-parallel");
  if (logic_parallel == "seq") {
    config.logic_parallel = core::LogicParallel::kSequential;
  } else if (logic_parallel == "det") {
    config.logic_parallel = core::LogicParallel::kDeterministic;
  }  // empty (the default) follows --parallel
  return config;
}

/// --log-epochs observer: one line per epoch, plus a training summary.
class EpochPrinter final : public core::TrainObserver {
 public:
  void OnEpochEnd(const core::EpochStats& stats) override {
    // Phase breakdown (logic pass / mining refresh are included in the
    // train time; ranking is the remainder). Only shown when the model
    // reports one, so baseline output stays unchanged.
    char phases[96] = "";
    if (stats.logic_seconds > 0.0 || stats.mining_seconds > 0.0) {
      std::snprintf(phases, sizeof(phases),
                    " [rank %.2fs, logic %.2fs, mine %.2fs]",
                    stats.seconds - stats.logic_seconds -
                        stats.mining_seconds,
                    stats.logic_seconds, stats.mining_seconds);
    }
    if (stats.val_metric >= 0.0) {
      std::printf("epoch %-4d loss=%.4f (%.2fs train, %.2fs probe)%s "
                  "val Recall@10=%.2f%%%s\n",
                  stats.epoch, stats.mean_loss, stats.seconds,
                  stats.probe_seconds, phases, stats.val_metric,
                  stats.improved ? " *" : "");
    } else {
      std::printf("epoch %-4d loss=%.4f (%.2fs)%s\n", stats.epoch,
                  stats.mean_loss, stats.seconds, phases);
    }
  }
  void OnTrainEnd(const core::TrainSummary& summary) override {
    if (summary.stopped_early) {
      std::printf("early stop after %d epochs (best epoch %d, "
                  "val Recall@10=%.2f%%)\n",
                  summary.epochs_run, summary.best_epoch,
                  summary.best_val_metric);
    }
  }
};

void PrintEval(const eval::EvalResult& result) {
  std::printf("Recall@10=%.2f%% Recall@20=%.2f%% NDCG@10=%.2f%% "
              "NDCG@20=%.2f%% (%d users)\n",
              result.Get("Recall@10"), result.Get("Recall@20"),
              result.Get("NDCG@10"), result.Get("NDCG@20"),
              result.users_evaluated);
}

int CmdTrain(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const data::Split split = data::TemporalSplit(*dataset);

  const std::string model_name = flags.GetString("model");
  Timer timer;
  core::TrainConfig config = ConfigFromFlags(flags);
  EpochPrinter printer;
  if (flags.GetBool("log-epochs")) config.observer = &printer;
  auto model = baselines::MakeModel(model_name, config);
  if (!model.ok()) return Fail(model.status());
  Status st = (*model)->Fit(*dataset, split);
  if (!st.ok()) return Fail(st);
  std::printf("trained %s in %.1fs\n", model_name.c_str(),
              timer.ElapsedSeconds());

  eval::Evaluator evaluator(&split, dataset->num_items);
  PrintEval(evaluator.Evaluate(**model));

  const std::string save_model = flags.GetString("save-model");
  if (!save_model.empty()) {
    auto dtype =
        core::ParseSnapshotDtype(flags.GetString("save-precision"));
    if (!dtype.ok()) return Fail(dtype.status());
    core::SnapshotHeader header;
    header.dim = config.dim;
    header.layers = config.layers;
    header.num_users = dataset->num_users;
    header.num_items = dataset->num_items;
    st = core::ModelSnapshot::Write(**model, header, save_model, *dtype);
    if (!st.ok()) return Fail(st);
    std::printf("snapshot saved to %s (%s)\n", save_model.c_str(),
                core::SnapshotDtypeName(*dtype).c_str());
  }

  const std::string model_out = flags.GetString("model-out");
  if (!model_out.empty()) {
    auto* logirec = dynamic_cast<core::LogiRecModel*>(model->get());
    if (logirec == nullptr) {
      std::fprintf(stderr,
                   "note: only LogiRec/LogiRec++ support --model-out\n");
      return 0;
    }
    std::filesystem::create_directories(model_out);
    st = logirec->Save(model_out);
    if (!st.ok()) return Fail(st);
    std::printf("model saved to %s\n", model_out.c_str());
  }
  return 0;
}

/// Restores a scoring-ready model from --load-model (binary snapshot,
/// any zoo model) or the legacy --model-in CSV directory (LogiRec only).
Result<std::unique_ptr<core::Recommender>> LoadSavedModel(
    const FlagParser& flags) {
  const std::string load_model = flags.GetString("load-model");
  if (!load_model.empty()) {
    return core::ModelSnapshot::Read(load_model, baselines::MakeModel);
  }
  const std::string model_in = flags.GetString("model-in");
  if (model_in.empty()) {
    return Status::InvalidArgument(
        "pass --load-model=SNAPSHOT or --model-in=CSV_DIR");
  }
  auto model = core::LogiRecModel::Load(model_in);
  if (!model.ok()) return model.status();
  return std::unique_ptr<core::Recommender>(
      std::make_unique<core::LogiRecModel>(std::move(*model)));
}

int CmdEvaluate(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const data::Split split = data::TemporalSplit(*dataset);
  auto model = LoadSavedModel(flags);
  if (!model.ok()) return Fail(model.status());
  eval::Evaluator evaluator(&split, dataset->num_items);
  PrintEval(evaluator.Evaluate(**model));
  return 0;
}

int CmdRecommend(const FlagParser& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const data::Split split = data::TemporalSplit(*dataset);
  auto model = LoadSavedModel(flags);
  if (!model.ok()) return Fail(model.status());

  const int user = flags.GetInt("user");
  if (user < 0 || user >= dataset->num_users) {
    return Fail(Status::OutOfRange("no such user"));
  }
  std::vector<double> scores;
  (*model)->ScoreItems(user, &scores);
  for (int v : split.train[user]) {
    scores[v] = -std::numeric_limits<double>::infinity();
  }
  std::printf("top-%d for user %d:\n", flags.GetInt("topk"), user);
  for (int v : eval::TopK(scores, flags.GetInt("topk"))) {
    const auto& tags = dataset->item_tags[v];
    const std::string label =
        tags.empty() ? "(untagged)"
                     : "<" + dataset->taxonomy.tag(tags[0]).name + ">";
    std::printf("  item %-5d %s\n", v, label.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: logirec <generate|stats|train|evaluate|recommend> "
                 "[flags]\n");
    return 1;
  }
  const std::string command = argv[1];

  FlagParser flags;
  flags.AddString("dataset", "cd", "preset for `generate`");
  flags.AddDouble("scale", 1.0, "dataset scale for `generate`");
  flags.AddString("out", "logirec_data", "output dir for `generate`");
  flags.AddString("data", "", "dataset dir (from `generate` or SaveDataset)");
  flags.AddString("model", "LogiRec++", "model name for `train`");
  flags.AddString("model-out", "", "where `train` persists the model (CSV)");
  flags.AddString("model-in", "", "saved CSV model dir for evaluate/recommend");
  flags.AddString("save-model", "",
                  "binary snapshot path `train` writes (any zoo model)");
  flags.AddString("save-precision", "f64",
                  "snapshot storage dtype for --save-model: f64, f32, or "
                  "int8");
  flags.AddString("load-model", "",
                  "binary snapshot path for evaluate/recommend");
  flags.AddInt("user", 0, "user id for `recommend`");
  flags.AddInt("topk", 10, "list length for `recommend`");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("layers", 3, "GCN layers");
  flags.AddInt("epochs", 150, "training epochs");
  flags.AddDouble("lr", 0.05, "learning rate");
  flags.AddDouble("lambda", 2.0, "logic regularizer weight");
  flags.AddDouble("margin", 1.0, "LMNN margin");
  flags.AddInt("threads", 0, "ParallelFor workers (0 = hardware)");
  flags.AddString("parallel", "det",
                  "training parallel mode: det (thread-invariant) or seq "
                  "(legacy single-stream)");
  flags.AddInt("logic-batch", 0,
               "LogiRec: relations sampled per logic family per step "
               "(0 = full pass)");
  flags.AddString("logic-parallel", "",
                  "LogiRec logic-pass mode: det (batched kernels) or seq "
                  "(legacy scalar loop); empty follows --parallel");
  flags.AddInt("patience", 0, "early-stopping patience in probes (0 = off)");
  flags.AddInt("eval-every", 10, "epochs between validation probes");
  flags.AddBool("log-epochs", false, "print per-epoch training telemetry");
  const Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) return Fail(st);
  if (flags.help_requested()) return 0;

  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 1;
}
