// Domain example: a music store (CD-like catalog) that trains LogiRec++,
// persists the generated catalog to disk, reloads it, and produces
// explainable per-user recommendations with consistency/granularity
// profiles — the downstream integration the paper's Table V motivates.

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/logirec_model.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace logirec;

namespace {

void Recommend(const core::LogiRecModel& model, const data::Dataset& dataset,
               const data::Split& split, int user, int k) {
  std::vector<double> scores;
  model.ScoreItems(user, &scores);
  for (int v : split.train[user]) {
    scores[v] = -std::numeric_limits<double>::infinity();
  }
  const auto* w = model.weighting();
  std::printf("user %-3d (CON=%.2f, GR=%.2f, weight=%.2f):\n", user,
              w->Con(user), w->Gr(user), w->Alpha(user));
  std::printf("  listened to: ");
  for (size_t i = 0; i < std::min<size_t>(split.train[user].size(), 4); ++i) {
    const int item = split.train[user][i];
    const auto& tags = dataset.item_tags[item];
    std::printf("album#%d<%s> ", item,
                tags.empty() ? "untagged"
                             : dataset.taxonomy.tag(tags[0]).name.c_str());
  }
  std::printf("...\n  we recommend: ");
  for (int item : eval::TopK(scores, k)) {
    const auto& tags = dataset.item_tags[item];
    std::printf("album#%d<%s> ", item,
                tags.empty() ? "untagged"
                             : dataset.taxonomy.tag(tags[0]).name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("epochs", 120, "training epochs");
  flags.AddInt("topk", 5, "recommendations per user");
  flags.AddString("store_dir", "/tmp/logirec_music_store",
                  "where the catalog CSVs are persisted");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  // 1. Build the catalog and persist it (interactions, tags, taxonomy).
  auto catalog = data::GenerateBenchmarkDataset("cd", 0.8);
  LOGIREC_CHECK(catalog.ok());
  const std::string dir = flags.GetString("store_dir");
  std::filesystem::create_directories(dir);
  LOGIREC_CHECK(data::SaveDataset(*catalog, dir).ok());
  std::printf("catalog persisted to %s\n", dir.c_str());

  // 2. Reload it — the pipeline a real deployment would run nightly.
  auto dataset = data::LoadDataset(dir, "music-store");
  LOGIREC_CHECK(dataset.ok());
  const data::Split split = data::TemporalSplit(*dataset);

  // 3. Train LogiRec++ and report offline ranking quality.
  core::LogiRecConfig config;
  config.epochs = flags.GetInt("epochs");
  core::LogiRecModel model(config);
  LOGIREC_CHECK(model.Fit(*dataset, split).ok());
  eval::Evaluator evaluator(&split, dataset->num_items);
  const auto result = evaluator.Evaluate(model);
  std::printf("offline quality: Recall@10=%.2f%% NDCG@10=%.2f%%\n",
              result.Get("Recall@10"), result.Get("NDCG@10"));

  // 4. Serve explainable recommendations for a few users.
  const auto* w = model.weighting();
  int consistent = 0, diverse = 0;
  for (int u = 1; u < dataset->num_users; ++u) {
    if (w->Con(u) > w->Con(consistent)) consistent = u;
    if (w->Con(u) < w->Con(diverse)) diverse = u;
  }
  std::printf("\n[a consistent listener]\n");
  Recommend(model, *dataset, split, consistent, flags.GetInt("topk"));
  std::printf("\n[an eclectic listener]\n");
  Recommend(model, *dataset, split, diverse, flags.GetInt("topk"));

  // 5. Show how the trained tag geometry mirrors the taxonomy: coarse
  // tags get large enclosing balls near the origin, fine tags small
  // balls near the boundary.
  std::printf("\ntrained tag geometry (granularity check):\n");
  for (int level = 1; level <= dataset->taxonomy.num_levels(); ++level) {
    double norm_sum = 0.0;
    int count = 0;
    for (int t : dataset->taxonomy.TagsAtLevel(level)) {
      norm_sum += math::Norm(model.tag_centers().Row(t));
      ++count;
    }
    if (count > 0) {
      std::printf("  level %d: mean ||c|| = %.3f over %d tags\n", level,
                  norm_sum / count, count);
    }
  }
  return 0;
}
