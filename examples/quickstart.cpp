// Quickstart: generate a benchmark-like dataset, train LogiRec++, and
// evaluate Recall/NDCG against a classic baseline.
//
//   ./quickstart --dataset=cd --epochs=30 --dim=32
//
// This walks the full public API surface: synthetic data generation,
// temporal splitting, model construction via the zoo, training, and
// full-ranking evaluation.

#include <cstdio>

#include "baselines/model_zoo.h"
#include "core/logirec_model.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

using namespace logirec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("dataset", "cd", "ciao | cd | clothing | book");
  flags.AddInt("epochs", 150, "training epochs");
  flags.AddInt("dim", 32, "embedding dimension");
  flags.AddInt("layers", 3, "graph convolution layers");
  flags.AddDouble("lr", 0.05, "learning rate");
  flags.AddDouble("lambda", 2.0, "logic regularizer weight");
  flags.AddDouble("scale", 1.0, "dataset scale factor");
  flags.AddDouble("margin", 1.0, "LMNN hinge margin");
  flags.AddInt("negs", 5, "negative samples per positive");
  flags.AddInt("batch", 1024, "triplets per optimization step");
  flags.AddBool("verbose", false, "log training losses");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  // 1. Data: a tagged dataset with a 4-level taxonomy, split by time.
  auto dataset = data::GenerateBenchmarkDataset(flags.GetString("dataset"),
                                                flags.GetDouble("scale"));
  LOGIREC_CHECK(dataset.ok());
  const data::DatasetStats stats = data::ComputeStats(*dataset);
  std::printf("dataset %-8s users=%d items=%d interactions=%ld tags=%d\n",
              stats.name.c_str(), stats.num_users, stats.num_items,
              stats.num_interactions, stats.num_tags);
  const data::Split split = data::TemporalSplit(*dataset);

  // 2. Models: LogiRec++ and a BPRMF reference point.
  core::TrainConfig config;
  config.dim = flags.GetInt("dim");
  config.layers = flags.GetInt("layers");
  config.epochs = flags.GetInt("epochs");
  config.learning_rate = flags.GetDouble("lr");
  config.lambda = flags.GetDouble("lambda");
  config.verbose = flags.GetBool("verbose");
  config.margin = flags.GetDouble("margin");
  config.negatives_per_positive = flags.GetInt("negs");
  config.batch_size = flags.GetInt("batch");

  eval::Evaluator evaluator(&split, dataset->num_items);
  for (const std::string& name : {"BPRMF", "LogiRec", "LogiRec++"}) {
    auto model = baselines::MakeModel(name, config);
    LOGIREC_CHECK(model.ok());
    Timer timer;
    LOGIREC_CHECK((*model)->Fit(*dataset, split).ok());
    const eval::EvalResult result = evaluator.Evaluate(**model);
    std::printf(
        "%-10s Recall@10=%6.2f  Recall@20=%6.2f  NDCG@10=%6.2f  "
        "NDCG@20=%6.2f  (%.1fs, %d users)\n",
        name.c_str(), result.Get("Recall@10"), result.Get("Recall@20"),
        result.Get("NDCG@10"), result.Get("NDCG@20"),
        timer.ElapsedSeconds(), result.users_evaluated);
  }
  return 0;
}
