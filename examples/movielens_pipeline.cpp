// Domain example: the full production pipeline on MovieLens-style data —
// ingest ratings + genre dumps, k-core filter, train LogiRec++ with early
// stopping, persist the model, reload it, and serve recommendations.
//
// Run without flags to exercise the pipeline on a small bundled-format
// sample this program writes itself; point --ratings/--items at a real
// ML-100k/1M dump to use actual data:
//
//   ./movielens_pipeline --ratings=ml-1m/ratings.dat --items=ml-1m/movies.dat

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/logirec_model.h"
#include "data/movielens.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"

using namespace logirec;

namespace {

/// Writes a small synthetic dump in the MovieLens format so the example
/// runs out of the box (3 genres, 60 movies, 40 users).
void WriteSampleDump(const std::string& ratings_path,
                     const std::string& items_path) {
  Rng rng(99);
  const char* genres[] = {"Action", "Comedy", "Drama", "Sci-Fi", "Romance"};
  std::ofstream items(items_path);
  for (int m = 1; m <= 60; ++m) {
    const int g = (m - 1) % 5;
    items << m << "::Movie " << m << "::" << genres[g];
    if (rng.Bernoulli(0.3)) items << "|" << genres[(g + 1) % 5];
    items << "\n";
  }
  std::ofstream ratings(ratings_path);
  long ts = 1000;
  for (int u = 1; u <= 40; ++u) {
    // Each user favors one genre: ratings 4-5 in genre, occasional low
    // ratings elsewhere.
    const int fav = rng.UniformInt(5);
    for (int k = 0; k < 25; ++k) {
      // Mostly movies from the favourite genre (rated high), some random
      // exploration (rated low).
      int movie;
      if (rng.Bernoulli(0.7)) {
        movie = 1 + fav + 5 * rng.UniformInt(12);  // in-genre movie id
      } else {
        movie = 1 + rng.UniformInt(60);
      }
      const bool in_genre = ((movie - 1) % 5) == fav;
      const int rating = in_genre ? rng.UniformInt(4, 5) : rng.UniformInt(1, 3);
      ratings << u << "::" << movie << "::" << rating << "::" << ts++ << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("ratings", "", "path to ratings.dat (empty = sample)");
  flags.AddString("items", "", "path to movies.dat (empty = sample)");
  flags.AddInt("epochs", 80, "max training epochs");
  flags.AddString("model_dir", "/tmp/logirec_ml_model", "model output dir");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  // 1. Ingest.
  std::string ratings = flags.GetString("ratings");
  std::string items = flags.GetString("items");
  if (ratings.empty() || items.empty()) {
    const std::string dir = "/tmp/logirec_ml_sample";
    std::filesystem::create_directories(dir);
    ratings = dir + "/ratings.dat";
    items = dir + "/movies.dat";
    WriteSampleDump(ratings, items);
    std::printf("using bundled sample dump in %s\n", dir.c_str());
  }
  auto dataset = data::LoadMovieLens(ratings, items);
  LOGIREC_CHECK_MSG(dataset.ok(), dataset.status().ToString());
  std::printf("loaded: %d users, %d items, %zu positives, %d genres\n",
              dataset->num_users, dataset->num_items,
              dataset->interactions.size(), dataset->taxonomy.num_tags());

  // 2. Train with early stopping on the validation fold.
  const data::Split split = data::TemporalSplit(*dataset);
  core::LogiRecConfig config;
  config.epochs = flags.GetInt("epochs");
  config.early_stopping_patience = 3;
  config.eval_every = 5;
  core::LogiRecModel model(config);
  LOGIREC_CHECK(model.Fit(*dataset, split).ok());

  eval::Evaluator evaluator(&split, dataset->num_items);
  const auto result = evaluator.Evaluate(model);
  std::printf("test quality: Recall@10=%.2f%% NDCG@10=%.2f%% (%d users)\n",
              result.Get("Recall@10"), result.Get("NDCG@10"),
              result.users_evaluated);

  // 3. Persist and reload (the nightly-train / online-serve split).
  const std::string model_dir = flags.GetString("model_dir");
  std::filesystem::create_directories(model_dir);
  LOGIREC_CHECK(model.Save(model_dir).ok());
  auto served = core::LogiRecModel::Load(model_dir);
  LOGIREC_CHECK_MSG(served.ok(), served.status().ToString());
  std::printf("model persisted to %s and reloaded\n", model_dir.c_str());

  // 4. Serve a request.
  std::vector<double> scores;
  served->ScoreItems(0, &scores);
  for (int v : split.train[0]) {
    scores[v] = -std::numeric_limits<double>::infinity();
  }
  std::printf("top-5 for user 0: ");
  for (int v : eval::TopK(scores, 5)) {
    const auto& tags = dataset->item_tags[v];
    std::printf("item%d<%s> ", v,
                tags.empty() ? "untagged"
                             : dataset->taxonomy.tag(tags[0]).name.c_str());
  }
  std::printf("\n");
  return 0;
}
