// Domain example: logical-relation extraction and mining on a bookstore
// taxonomy. Shows the relation-extraction rules (membership, hierarchy,
// sibling exclusion with co-occurrence evidence), then demonstrates how
// training refines an *inaccurate* exclusion: two sibling tags whose
// audiences genuinely overlap end up geometrically closer than a clean
// exclusive pair — the paper's <Heavy Metal> vs <Metal> story.

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/logirec_model.h"
#include "data/synthetic.h"
#include "hyper/hyperplane.h"
#include "hyper/poincare.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace logirec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("epochs", 120, "training epochs");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.help_requested()) return 0;

  // A book-like dataset with a strong behavioural-overlap knob so that
  // several taxonomy-exclusive sibling pairs have genuinely shared
  // audiences.
  data::SyntheticConfig config = data::BookLikeConfig(0.8);
  config.overlap_sibling_prob = 0.25;
  const data::Dataset dataset = data::GenerateSynthetic(config);
  const data::Split split = data::TemporalSplit(dataset);

  // --- 1. relation extraction -------------------------------------------
  const data::LogicalRelations relations = dataset.ExtractRelations();
  std::printf("taxonomy: %d tags over %d levels\n",
              dataset.taxonomy.num_tags(), dataset.taxonomy.num_levels());
  std::printf("extracted: %zu memberships, %zu hierarchy pairs, %zu "
              "exclusions\n",
              relations.memberships.size(), relations.hierarchy.size(),
              relations.exclusions.size());
  int shown = 0;
  for (const data::ExclusionPair& e : relations.exclusions) {
    if (dataset.taxonomy.tag(e.a).level != 2 || shown >= 3) continue;
    std::printf("  e.g. <%s> excl. <%s> (level %d)\n",
                dataset.taxonomy.tag(e.a).name.c_str(),
                dataset.taxonomy.tag(e.b).name.c_str(), e.level);
    ++shown;
  }

  // --- 2. measure behavioural overlap of exclusive pairs -----------------
  std::vector<std::set<int>> users_of_tag(dataset.taxonomy.num_tags());
  for (int u = 0; u < dataset.num_users; ++u) {
    for (int v : split.train[u]) {
      for (int t : dataset.item_tags[v]) users_of_tag[t].insert(u);
    }
  }
  auto overlap = [&](int a, int b) {
    const auto& ua = users_of_tag[a];
    const auto& ub = users_of_tag[b];
    if (ua.empty() || ub.empty()) return 0.0;
    int common = 0;
    for (int u : ua) common += ub.count(u);
    return static_cast<double>(common) / std::min(ua.size(), ub.size());
  };

  // --- 3. train LogiRec++ and inspect the refined geometry ---------------
  core::LogiRecConfig model_config;
  model_config.epochs = flags.GetInt("epochs");
  core::LogiRecModel model(model_config);
  LOGIREC_CHECK(model.Fit(dataset, split).ok());

  // Compare tag-hyperplane gaps for the most- and least-overlapping
  // exclusive pairs: mining should leave overlapping "exclusions" with a
  // smaller geometric gap than clean ones.
  struct Scored {
    double overlap;
    int a, b;
  };
  std::vector<Scored> scored;
  for (const data::ExclusionPair& e : relations.exclusions) {
    if (users_of_tag[e.a].size() < 3 || users_of_tag[e.b].size() < 3) {
      continue;
    }
    scored.push_back({overlap(e.a, e.b), e.a, e.b});
  }
  LOGIREC_CHECK_MSG(scored.size() >= 4, "need a few eligible pairs");
  std::sort(scored.begin(), scored.end(),
            [](const Scored& x, const Scored& y) {
              return x.overlap < y.overlap;
            });

  auto gap = [&](int a, int b) {
    const auto ball_a = hyper::BallFromCenter(model.tag_centers().Row(a));
    const auto ball_b = hyper::BallFromCenter(model.tag_centers().Row(b));
    return math::Distance(ball_a.center, ball_b.center) -
           (ball_a.radius + ball_b.radius);
  };

  double clean_gap = 0.0, noisy_gap = 0.0;
  const size_t quarter = std::max<size_t>(scored.size() / 4, 1);
  for (size_t i = 0; i < quarter; ++i) {
    clean_gap += gap(scored[i].a, scored[i].b) / quarter;
    const Scored& top = scored[scored.size() - 1 - i];
    noisy_gap += gap(top.a, top.b) / quarter;
  }
  std::printf("\nafter training (lambda=%.2f):\n", model_config.lambda);
  std::printf("  mean geometric gap, clean exclusions (overlap %.2f..): "
              "%.4f\n",
              scored.front().overlap, clean_gap);
  std::printf("  mean geometric gap, noisy exclusions (overlap ..%.2f): "
              "%.4f\n",
              scored.back().overlap, noisy_gap);
  std::printf("  mining verdict: overlapping 'exclusive' tags sit %s\n",
              noisy_gap < clean_gap
                  ? "CLOSER — the inaccurate exclusions were refined"
                  : "no closer — refinement not visible on this seed");

  // --- 4. granularity readout -------------------------------------------
  std::printf("\nhyperplane distance-to-origin by level (finer = farther):\n");
  for (int level = 1; level <= dataset.taxonomy.num_levels(); ++level) {
    double sum = 0.0;
    int count = 0;
    for (int t : dataset.taxonomy.TagsAtLevel(level)) {
      sum += hyper::HyperplaneDistanceToOrigin(model.tag_centers().Row(t));
      ++count;
    }
    if (count > 0) {
      std::printf("  level %d: %.3f (n=%d)\n", level, sum / count, count);
    }
  }
  return 0;
}
